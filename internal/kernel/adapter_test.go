package kernel_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/model"
)

func adapterSystem(t *testing.T) *kernel.Adapter {
	t.Helper()
	k := twoRegimes(t, senderSrc, receiverSrc, nil)
	return kernel.NewAdapter(k)
}

func TestAdapterColoursAndAbstract(t *testing.T) {
	a := adapterSystem(t)
	cols := a.Colours()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("colours = %v", cols)
	}
	// At boot, regime a is active.
	if got := a.Colour(); got != "a" {
		t.Errorf("boot colour = %s", got)
	}
	if op := a.NextOp(); !strings.HasPrefix(string(op), "user:a@") {
		t.Errorf("boot op = %s", op)
	}
	// Abstracts are distinct and non-empty per colour.
	pa, pb := a.Abstract("a"), a.Abstract("b")
	if pa == "" || pb == "" || pa == pb {
		t.Errorf("degenerate abstractions")
	}
	if a.Abstract("nonexistent") != "" {
		t.Error("unknown colour produced an abstraction")
	}
}

func TestAdapterSaveRestoreStep(t *testing.T) {
	a := adapterSystem(t)
	s0 := a.Save()
	for i := 0; i < 25; i++ {
		a.ApplyInput(nil)
		a.Step()
	}
	after1 := a.Abstract("a") + a.Abstract("b")
	a.Restore(s0)
	for i := 0; i < 25; i++ {
		a.ApplyInput(nil)
		a.Step()
	}
	if got := a.Abstract("a") + a.Abstract("b"); got != after1 {
		t.Error("adapter replay diverged")
	}
}

func TestAdapterStepChangesOnlyActiveColour(t *testing.T) {
	// With the channel CUT, no step by one colour may change the other's
	// view (condition 2, spot-checked directly along a trace).
	k := twoRegimes(t, senderSrc, receiverSrc,
		func(c *kernel.Config) { c.CutChannels = true })
	a := kernel.NewAdapter(k)
	for i := 0; i < 120; i++ {
		col := a.Colour()
		if col == "a" || col == "b" {
			other := model.Colour("b")
			if col == "b" {
				other = "a"
			}
			before := a.Abstract(other)
			op := a.NextOp()
			a.Step()
			if after := a.Abstract(other); after != before {
				t.Fatalf("step %d (%s active, op %s) changed %s's view", i, col, op, other)
			}
		} else {
			a.Step()
		}
		a.ApplyInput(nil)
	}
}

func TestAdapterPerturbPreservesOwnView(t *testing.T) {
	a := adapterSystem(t)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		a.ApplyInput(nil)
		a.Step()
	}
	for _, c := range a.Colours() {
		before := a.Abstract(c)
		s := a.Save()
		a.PerturbOutside(c, rng)
		if got := a.Abstract(c); got != before {
			t.Errorf("perturbation outside %s changed Φ_%s", c, c)
		}
		a.Restore(s)
	}
}

func TestUnownedDeviceInterruptIsDropped(t *testing.T) {
	m := machine.New(0x4000)
	stray := machine.NewClock("stray", 5)
	m.Attach(stray)
	k, err := kernel.New(m, kernel.Config{
		Regimes: []kernel.RegimeSpec{
			{Name: "a", Base: 0x1000, Size: 0x400, Image: prog(t, `
	.org 0x40
start:
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x20
	TRAP #SWAP
	BR loop
`)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	// Force the stray device to interrupt by enabling its IE directly.
	stray.WriteReg(0, 0x40)
	k.Run(2000)
	if k.Dead() {
		t.Fatalf("stray interrupt killed the kernel: %v", k.Cause)
	}
	if v, _ := k.ReadRegimeMem(0, 0x20); v < 10 {
		t.Errorf("regime starved by stray interrupts: %d", v)
	}
	if k.Stats().Interrupts == 0 {
		t.Error("stray interrupts never reached the kernel")
	}
}

func TestChanPollBothSides(t *testing.T) {
	k := twoRegimes(t, `
	.org 0x40
start:
	MOV #0, R0
	TRAP #POLL          ; sender: free space before sending
	MOV R1, @0x20
	MOV #0, R0
	MOV #0xAA, R1
	TRAP #SEND
	MOV #0, R0
	TRAP #POLL          ; free space after one send
	MOV R1, @0x21
	TRAP #HALTME
`, `
	.org 0x40
start:
	TRAP #SWAP          ; let the sender go first
	MOV #0, R0
	TRAP #POLL          ; receiver: words available
	MOV R1, @0x20
	TRAP #HALTME
`, nil)
	k.RunUntilIdle(10000)
	a, b := k.RegimeIndex("a"), k.RegimeIndex("b")
	before, _ := k.ReadRegimeMem(a, 0x20)
	after, _ := k.ReadRegimeMem(a, 0x21)
	if before != 8 || after != 7 {
		t.Errorf("sender free space %d -> %d, want 8 -> 7", before, after)
	}
	if avail, _ := k.ReadRegimeMem(b, 0x20); avail != 1 {
		t.Errorf("receiver sees %d words, want 1", avail)
	}
}

func TestRegimeRegAndPSWViews(t *testing.T) {
	k := twoRegimes(t, `
	.org 0x40
start:
	MOV #0x1234, R3
	TRAP #SWAP
	BR start
`, `
	.org 0x40
start:
	MOV #0x5678, R3
	TRAP #SWAP
	BR start
`, nil)
	k.Run(40)
	// Whichever regime is inactive must report its SAVED R3.
	cur := k.CurrentRegime()
	other := 1 - cur
	otherR3 := k.RegimeReg(other, 3)
	if otherR3 != 0x1234 && otherR3 != 0x5678 {
		t.Errorf("inactive regime R3 = %#x", otherR3)
	}
	// PSW views expose only condition codes.
	if psw := k.RegimePSW(cur); psw&^0xF != 0 {
		t.Errorf("PSW view leaks non-CC bits: %#x", psw)
	}
}

func TestReadWriteRegimeMemBounds(t *testing.T) {
	k := twoRegimes(t, senderSrc, receiverSrc, nil)
	if _, ok := k.ReadRegimeMem(0, 0x800); ok {
		t.Error("read past partition succeeded")
	}
	if k.WriteRegimeMem(0, 0xFFFF, 1) {
		t.Error("write past partition succeeded")
	}
	if !k.WriteRegimeMem(0, 0x30, 0xAB) {
		t.Error("in-bounds write failed")
	}
	if v, _ := k.ReadRegimeMem(0, 0x30); v != 0xAB {
		t.Errorf("read back %#x", v)
	}
}
