package kernel

import "testing"

// Every kernel service code must have exactly one footprint, under its
// canonical name, covering at least the base save slots that saveCurrent
// writes and resume reads on every service path.
func TestFootprintsCoverAllServices(t *testing.T) {
	fps := Footprints()
	byCode := map[Word]TrapFootprint{}
	for _, fp := range fps {
		if _, dup := byCode[fp.Code]; dup {
			t.Errorf("duplicate footprint for code %d", fp.Code)
		}
		byCode[fp.Code] = fp
	}
	for code := TrapSwap; code <= TrapID; code++ {
		fp, ok := byCode[code]
		if !ok {
			t.Errorf("no footprint for service %s (code %d)", TrapName(code), code)
			continue
		}
		if fp.Name != TrapName(code) {
			t.Errorf("footprint %d named %q, want %q", code, fp.Name, TrapName(code))
		}
		base := map[Word]bool{}
		for _, s := range saveBaseSlots() {
			base[s] = true
		}
		for _, slots := range [][]Word{fp.SaveReads, fp.SaveWrites} {
			covered := map[Word]bool{}
			for _, s := range slots {
				covered[s] = true
				if s >= saveStride {
					t.Errorf("%s: slot offset %d outside the save area stride", fp.Name, s)
				}
			}
			for s := range base {
				if !covered[s] {
					t.Errorf("%s: base save slot +%d missing (saveCurrent/resume touch it on every service)", fp.Name, s)
				}
			}
		}
	}
	if len(fps) != int(TrapID)+1 {
		t.Errorf("Footprints() has %d entries, want %d", len(fps), int(TrapID)+1)
	}
}

// The footprints must agree with the service implementations on the facts
// the static analyzer relies on: which registers each service writes, and
// which services are channel endpoints.
func TestFootprintRegisterEffects(t *testing.T) {
	writes := func(code Word) map[int]RegEffect {
		fp, ok := FootprintFor(code)
		if !ok {
			t.Fatalf("no footprint for code %d", code)
		}
		m := map[int]RegEffect{}
		for _, w := range fp.WriteRegs {
			m[w.Reg] = w.Effect
		}
		return m
	}

	// syscall(): TrapSend writes R0 (status); TrapRecv writes R0 and R1;
	// TrapPoll writes R0 and R1; TrapID writes R0 from the static regime
	// index; the yielding services write no registers at all.
	if w := writes(TrapSend); len(w) != 1 || w[0] != EffKernelOwn {
		t.Errorf("SEND writes = %v, want {R0: kernel-own}", w)
	}
	if w := writes(TrapRecv); len(w) != 2 || w[0] != EffKernelOwn || w[1] != EffChannelIn {
		t.Errorf("RECV writes = %v, want {R0: kernel-own, R1: channel-in}", w)
	}
	if w := writes(TrapPoll); len(w) != 2 || w[0] != EffKernelOwn || w[1] != EffKernelOwn {
		t.Errorf("POLL writes = %v, want {R0,R1: kernel-own}", w)
	}
	if w := writes(TrapID); len(w) != 1 || w[0] != EffConfig {
		t.Errorf("WHOAMI writes = %v, want {R0: config}", w)
	}
	for _, code := range []Word{TrapSwap, TrapIRQOn, TrapIRQOff, TrapHalt, TrapWaitIRQ} {
		if w := writes(code); len(w) != 0 {
			t.Errorf("%s writes registers %v; the implementation writes none", TrapName(code), w)
		}
	}

	// Channel endpoints: exactly SEND exports R1 and RECV imports into R1.
	for code := TrapSwap; code <= TrapID; code++ {
		fp, _ := FootprintFor(code)
		wantOut, wantIn := -1, -1
		switch code {
		case TrapSend:
			wantOut = 1
		case TrapRecv:
			wantIn = 1
		}
		if fp.ChanOutReg != wantOut || fp.ChanInReg != wantIn {
			t.Errorf("%s channel regs out=%d in=%d, want out=%d in=%d",
				fp.Name, fp.ChanOutReg, fp.ChanInReg, wantOut, wantIn)
		}
	}

	// Scheduling services: the ones whose implementation calls resume with
	// a regime other than the caller.
	for code := TrapSwap; code <= TrapID; code++ {
		fp, _ := FootprintFor(code)
		want := code == TrapSwap || code == TrapHalt || code == TrapWaitIRQ
		if fp.Sched != want {
			t.Errorf("%s Sched = %v, want %v", fp.Name, fp.Sched, want)
		}
	}

	if _, ok := FootprintFor(0xFF); ok {
		t.Error("FootprintFor(0xFF) = ok, want miss")
	}
}
