package kernel

// Leaks enumerates deliberate separation violations that can be compiled
// into a SUE-Go instance. They exist to validate the verifier (experiment
// E8): a Proof-of-Separability check must pass the honest kernel and catch
// every one of these, while ordinary functional tests notice none of them.
//
// Each leak is the executable form of a classic kernel bug family:
type Leaks struct {
	// RegisterLeak skips restoring R5 on a context switch, so the
	// outgoing regime's R5 value is visible to the incoming regime —
	// the exact hazard Rushby's SWAP discussion is about.
	RegisterLeak bool

	// PartitionOverlap maps one word of the *next* regime's partition
	// into every regime's address space (segment 12), a botched MMU
	// configuration.
	PartitionOverlap bool

	// SharedScratch maps a kernel scratch word into every regime
	// (segment 13) read-write: a storage channel through kernel data.
	SharedScratch bool

	// InterruptMisroute credits device interrupts to the wrong regime's
	// pending word, so one regime's I/O modulates another's control flow —
	// the interrupt-handling hazard that IFA cannot even express.
	InterruptMisroute bool

	// ChannelAlias makes every channel share channel 0's buffer: two
	// supposedly independent channels are one object, the hazard the
	// channel-cutting argument is designed to expose.
	ChannelAlias bool

	// SchedulerSnoop makes the round-robin decision depend on a word of
	// regime 0's memory, violating condition 6 (NEXTOP must be a function
	// of the active regime's own abstract state).
	SchedulerSnoop bool

	// OutputCopy copies one word of the outgoing regime's partition into
	// the incoming regime's partition on every context switch: a blatant
	// direct flow, the easy case every method should catch.
	OutputCopy bool
}

// Any reports whether any leak is enabled.
func (l Leaks) Any() bool {
	return l.RegisterLeak || l.PartitionOverlap || l.SharedScratch ||
		l.InterruptMisroute || l.ChannelAlias || l.SchedulerSnoop || l.OutputCopy
}

// AllLeaks returns one Leaks value per individual leak, for fault-injection
// sweeps.
func AllLeaks() map[string]Leaks {
	return map[string]Leaks{
		"RegisterLeak":      {RegisterLeak: true},
		"PartitionOverlap":  {PartitionOverlap: true},
		"SharedScratch":     {SharedScratch: true},
		"InterruptMisroute": {InterruptMisroute: true},
		"ChannelAlias":      {ChannelAlias: true},
		"SchedulerSnoop":    {SchedulerSnoop: true},
		"OutputCopy":        {OutputCopy: true},
	}
}
