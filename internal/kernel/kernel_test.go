package kernel_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// prog assembles kernel.Prelude + src.
func prog(t *testing.T, src string) *asm.Image {
	t.Helper()
	im, err := asm.Assemble(kernel.Prelude + src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return im
}

// twoRegimes builds a standard two-regime machine+kernel with one channel
// a->b and boots it.
func twoRegimes(t *testing.T, srcA, srcB string, mut func(*kernel.Config)) *kernel.Kernel {
	t.Helper()
	m := machine.New(0x4000)
	cfg := kernel.Config{
		Regimes: []kernel.RegimeSpec{
			{Name: "a", Base: 0x1000, Size: 0x800, Image: prog(t, srcA)},
			{Name: "b", Base: 0x2000, Size: 0x800, Image: prog(t, srcB)},
		},
		Channels: []kernel.ChannelSpec{
			{Name: "ab", From: "a", To: "b", Capacity: 8},
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		t.Fatalf("kernel.New: %v", err)
	}
	if err := k.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	return k
}

const senderSrc = `
	.org 0x40
start:
	MOV #1, R2        ; value to send
	MOV #5, R3        ; how many
loop:
	MOV #0, R0        ; channel 0
	MOV R2, R1
	TRAP #SEND
	CMP #1, R0
	BNE yield         ; full: yield and retry
	ADD #1, R2
	SUB #1, R3
	BNE loop
	TRAP #HALTME
yield:
	TRAP #SWAP
	BR loop
`

const receiverSrc = `
	.org 0x40
start:
	MOV #0, R4        ; running sum
	MOV #5, R5        ; expect 5 values
loop:
	MOV #0, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	ADD R1, R4
	SUB #1, R5
	BNE loop
	MOV R4, @0x20     ; store the sum in regime memory
	TRAP #HALTME
yield:
	TRAP #SWAP
	BR loop
`

func TestChannelPingPong(t *testing.T) {
	k := twoRegimes(t, senderSrc, receiverSrc, nil)
	k.RunUntilIdle(20000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	b := k.RegimeIndex("b")
	sum, ok := k.ReadRegimeMem(b, 0x20)
	if !ok {
		t.Fatal("cannot read receiver memory")
	}
	if sum != 1+2+3+4+5 {
		t.Errorf("receiver sum = %d, want 15", sum)
	}
	if st := k.RegimeStateOf(b); st != kernel.StateDead {
		t.Errorf("receiver state = %d, want dead (halted)", st)
	}
}

func TestRoundRobinBothProgress(t *testing.T) {
	counter := `
	.org 0x40
start:
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x20
	TRAP #SWAP
	BR loop
`
	k := twoRegimes(t, counter, counter, nil)
	k.Run(2000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	for _, name := range []string{"a", "b"} {
		i := k.RegimeIndex(name)
		v, _ := k.ReadRegimeMem(i, 0x20)
		if v < 10 {
			t.Errorf("regime %s made only %d iterations", name, v)
		}
	}
	s := k.Stats()
	if s.Swaps < 20 {
		t.Errorf("expected many swaps, got %d", s.Swaps)
	}
}

func TestMMUFaultKillsOnlyOffender(t *testing.T) {
	evil := `
	.org 0x40
start:
	MOV @0x4000, R0    ; far outside the 0x800-word partition
	TRAP #HALTME
`
	good := `
	.org 0x40
start:
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x20
	TRAP #SWAP
	CMP #50, R2
	BNE loop
	TRAP #HALTME
`
	k := twoRegimes(t, evil, good, nil)
	k.RunUntilIdle(20000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	a, b := k.RegimeIndex("a"), k.RegimeIndex("b")
	if st := k.RegimeStateOf(a); st != kernel.StateDead {
		t.Errorf("offender state = %d, want dead", st)
	}
	if f := k.RegimeFault(a); !strings.Contains(f.Reason, "MMU abort") {
		t.Errorf("offender fault = %q, want MMU abort", f.Reason)
	}
	v, _ := k.ReadRegimeMem(b, 0x20)
	if v != 50 {
		t.Errorf("innocent regime reached %d, want 50", v)
	}
}

func TestChannelDirectionEnforced(t *testing.T) {
	// b tries to SEND on a channel it may only receive from; a tries to
	// RECV from a channel it may only send on. Both must be denied.
	aSrc := `
	.org 0x40
start:
	MOV #0, R0
	TRAP #RECV        ; wrong direction
	MOV R0, @0x20     ; must be 0
	TRAP #HALTME
`
	bSrc := `
	.org 0x40
start:
	MOV #0, R0
	MOV #0xBAD, R1
	TRAP #SEND        ; wrong direction
	MOV R0, @0x20     ; must be 0
	TRAP #HALTME
`
	k := twoRegimes(t, aSrc, bSrc, nil)
	k.RunUntilIdle(10000)
	for _, name := range []string{"a", "b"} {
		i := k.RegimeIndex(name)
		v, _ := k.ReadRegimeMem(i, 0x20)
		if v != 0 {
			t.Errorf("regime %s wrong-direction call returned %d, want 0", name, v)
		}
	}
}

func TestInvalidChannelIDDenied(t *testing.T) {
	src := `
	.org 0x40
start:
	MOV #7, R0        ; no such channel
	MOV #1, R1
	TRAP #SEND
	MOV R0, @0x20
	TRAP #HALTME
`
	k := twoRegimes(t, src, `
	.org 0x40
start:	TRAP #HALTME
`, nil)
	k.RunUntilIdle(10000)
	v, _ := k.ReadRegimeMem(k.RegimeIndex("a"), 0x20)
	if v != 0 {
		t.Errorf("invalid channel send returned %d, want 0", v)
	}
}

func TestChannelBackpressure(t *testing.T) {
	// Sender floods a capacity-8 channel without any receiver: exactly 8
	// sends succeed and the 9th returns 0.
	src := `
	.org 0x40
start:
	MOV #0, R2         ; successes
	MOV #12, R3        ; attempts
loop:
	MOV #0, R0
	MOV #7, R1
	TRAP #SEND
	ADD R0, R2
	SUB #1, R3
	BNE loop
	MOV R2, @0x20
	TRAP #HALTME
`
	k := twoRegimes(t, src, `
	.org 0x40
start:	TRAP #HALTME
`, nil)
	k.RunUntilIdle(10000)
	v, _ := k.ReadRegimeMem(k.RegimeIndex("a"), 0x20)
	if v != 8 {
		t.Errorf("successful sends = %d, want 8 (capacity)", v)
	}
}

func TestCutChannelsSwallowSends(t *testing.T) {
	k := twoRegimes(t, senderSrc, `
	.org 0x40
start:
	MOV #0, R0
	TRAP #RECV
	MOV R0, @0x20      ; 0: nothing to receive in the cut system
	MOV #0, R0
	TRAP #POLL
	MOV R1, @0x21      ; 0 words available
	TRAP #HALTME
`, func(c *kernel.Config) { c.CutChannels = true })
	k.RunUntilIdle(20000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	b := k.RegimeIndex("b")
	got, _ := k.ReadRegimeMem(b, 0x20)
	if got != 0 {
		t.Errorf("cut channel delivered data: recv ok=%d", got)
	}
	avail, _ := k.ReadRegimeMem(b, 0x21)
	if avail != 0 {
		t.Errorf("cut channel reports %d words available, want 0", avail)
	}
	// The sender still sees sends succeed (its end is buffer X1).
	a := k.RegimeIndex("a")
	if st := k.RegimeStateOf(a); st != kernel.StateDead {
		t.Errorf("sender did not finish; state=%d fault=%+v", st, k.RegimeFault(a))
	}
}

func TestTrapIDReturnsIndex(t *testing.T) {
	src := `
	.org 0x40
start:
	TRAP #WHOAMI
	MOV R0, @0x20
	TRAP #HALTME
`
	k := twoRegimes(t, src, src, nil)
	k.RunUntilIdle(10000)
	for _, name := range []string{"a", "b"} {
		i := k.RegimeIndex(name)
		v, _ := k.ReadRegimeMem(i, 0x20)
		if int(v) != i {
			t.Errorf("regime %s WHOAMI = %d, want %d", name, v, i)
		}
	}
}

func TestIllegalInstructionKillsRegime(t *testing.T) {
	evil := `
	.org 0x40
start:
	HALT              ; privileged: illegal in user mode
`
	k := twoRegimes(t, evil, `
	.org 0x40
start:	TRAP #HALTME
`, nil)
	k.RunUntilIdle(10000)
	a := k.RegimeIndex("a")
	if st := k.RegimeStateOf(a); st != kernel.StateDead {
		t.Errorf("regime state = %d, want dead", st)
	}
	if f := k.RegimeFault(a); !strings.Contains(f.Reason, "illegal") {
		t.Errorf("fault = %q, want illegal instruction", f.Reason)
	}
}

// deviceKernel builds a kernel where regime "io" owns a TTY and regime
// "other" owns nothing.
func deviceKernel(t *testing.T, ioSrc, otherSrc string) (*kernel.Kernel, *machine.TTY) {
	t.Helper()
	m := machine.New(0x4000)
	tty := machine.NewTTY("tty0", 1)
	m.Attach(tty)
	cfg := kernel.Config{
		Regimes: []kernel.RegimeSpec{
			{Name: "io", Base: 0x1000, Size: 0x800, Image: prog(t, ioSrc),
				Devices: []machine.Device{tty}},
			{Name: "other", Base: 0x2000, Size: 0x800, Image: prog(t, otherSrc)},
		},
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		t.Fatalf("kernel.New: %v", err)
	}
	if err := k.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	return k, tty
}

func TestDeviceOwnershipPolledEcho(t *testing.T) {
	ioSrc := `
	.org 0x40
start:
	MOV #3, R3          ; echo three bytes
poll:
	MOV @DEV0, R0       ; RSTAT
	AND #1, R0
	BEQ yield
	MOV @DEV0+1, R1     ; RDATA
	MOV R1, @DEV0+3     ; XDATA
	SUB #1, R3
	BNE poll
	TRAP #HALTME
yield:
	TRAP #SWAP
	BR poll
`
	otherSrc := `
	.org 0x40
start:
	TRAP #SWAP
	BR start
`
	k, tty := deviceKernel(t, ioSrc, otherSrc)
	tty.InjectString("xyz")
	k.Run(20000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	if got := tty.OutputString(); got != "xyz" {
		t.Errorf("echo = %q, want %q", got, "xyz")
	}
}

func TestNonOwnerCannotTouchDevice(t *testing.T) {
	ioSrc := `
	.org 0x40
start:
	TRAP #SWAP
	BR start
`
	thief := `
	.org 0x40
start:
	MOV @DEV0, R0       ; not mapped for this regime
	TRAP #HALTME
`
	k, _ := deviceKernel(t, ioSrc, thief)
	k.Run(5000)
	other := k.RegimeIndex("other")
	if st := k.RegimeStateOf(other); st != kernel.StateDead {
		t.Errorf("device thief survived; state=%d", st)
	}
	if f := k.RegimeFault(other); !strings.Contains(f.Reason, "MMU abort") {
		t.Errorf("fault = %q, want MMU abort", f.Reason)
	}
}

func TestInterruptForwardingToRegime(t *testing.T) {
	// The io regime installs a receive-interrupt handler, enables device
	// interrupts, and waits. Each interrupt reads one byte and bumps a
	// counter; after 3 bytes the main loop halts.
	ioSrc := `
	.org 0x10
	.word 0            ; vector for owned device 0 (patched below)
	.org 0x40
start:
	MOV #isr, @0x10    ; install handler for device 0
	MOV #0, R4         ; byte count lives in R4... but ISR has own regs? no:
	MOV #0, @0x30      ; count in memory
	MOV #0x40, @DEV0   ; TTY RSTAT: enable receive interrupts
	TRAP #IRQON
main:
	MOV @0x30, R0
	CMP #3, R0
	BEQ done
	TRAP #WAITIRQ
	BR main
done:
	TRAP #HALTME
isr:
	MOV @DEV0+1, R1    ; consume byte
	MOV @0x30, R2
	ADD #1, R2
	MOV R2, @0x30
	MOV R1, @DEV0+3    ; echo
	RTI                ; virtual return-from-interrupt
`
	otherSrc := `
	.org 0x40
start:
	MOV #0, R2
loop:
	ADD #1, R2
	TRAP #SWAP
	BR loop
`
	k, tty := deviceKernel(t, ioSrc, otherSrc)
	tty.InjectString("abc")
	k.Run(50000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	io := k.RegimeIndex("io")
	count, _ := k.ReadRegimeMem(io, 0x30)
	if count != 3 {
		t.Errorf("interrupts handled = %d, want 3 (fault: %+v)", count, k.RegimeFault(io))
	}
	if got := tty.OutputString(); got != "abc" {
		t.Errorf("interrupt-driven echo = %q, want %q", got, "abc")
	}
	if st := k.RegimeStateOf(io); st != kernel.StateDead {
		t.Errorf("io regime did not halt cleanly; state=%d", st)
	}
	s := k.Stats()
	if s.Interrupts < 3 || s.Deliveries < 3 {
		t.Errorf("stats: interrupts=%d deliveries=%d, want >=3 each", s.Interrupts, s.Deliveries)
	}
}

func TestLeakyKernelsStillPassFunctionalTests(t *testing.T) {
	// The whole point of E8: every planted leak is invisible to an
	// ordinary functional workload. (The verifier, not the test suite,
	// must be what catches them.)
	for name, leaks := range kernel.AllLeaks() {
		if leaks.ChannelAlias {
			continue // needs two channels; exercised separately below
		}
		t.Run(name, func(t *testing.T) {
			k := twoRegimes(t, senderSrc, receiverSrc,
				func(c *kernel.Config) { c.Leaks = leaks })
			k.RunUntilIdle(20000)
			if k.Dead() {
				t.Fatalf("kernel died: %v", k.Cause)
			}
			sum, _ := k.ReadRegimeMem(k.RegimeIndex("b"), 0x20)
			if sum != 15 {
				t.Errorf("leak %s broke the functional path: sum=%d", name, sum)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	m := machine.New(0x4000)
	im := asm.MustAssemble(".org 0x40\nstart: TRAP #6")
	cases := []struct {
		name string
		cfg  kernel.Config
	}{
		{"no regimes", kernel.Config{}},
		{"overlap", kernel.Config{Regimes: []kernel.RegimeSpec{
			{Name: "a", Base: 0x1000, Size: 0x800, Image: im},
			{Name: "b", Base: 0x1400, Size: 0x800, Image: im},
		}}},
		{"kernel area", kernel.Config{Regimes: []kernel.RegimeSpec{
			{Name: "a", Base: 0x200, Size: 0x800, Image: im},
		}}},
		{"dup names", kernel.Config{Regimes: []kernel.RegimeSpec{
			{Name: "a", Base: 0x1000, Size: 0x800, Image: im},
			{Name: "a", Base: 0x2000, Size: 0x800, Image: im},
		}}},
		{"bad channel regime", kernel.Config{
			Regimes: []kernel.RegimeSpec{
				{Name: "a", Base: 0x1000, Size: 0x800, Image: im},
			},
			Channels: []kernel.ChannelSpec{{Name: "x", From: "a", To: "nobody"}},
		}},
		{"self channel", kernel.Config{
			Regimes: []kernel.RegimeSpec{
				{Name: "a", Base: 0x1000, Size: 0x800, Image: im},
			},
			Channels: []kernel.ChannelSpec{{Name: "x", From: "a", To: "a"}},
		}},
		{"exceeds RAM", kernel.Config{Regimes: []kernel.RegimeSpec{
			{Name: "a", Base: 0x3F00, Size: 0x800, Image: im},
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := kernel.New(m, c.cfg); err == nil {
				t.Errorf("config %q accepted, want error", c.name)
			}
		})
	}
}

func TestKernelRebootIsDeterministic(t *testing.T) {
	k := twoRegimes(t, senderSrc, receiverSrc, nil)
	k.Run(500)
	s1 := k.Machine().Snapshot()
	if err := k.Boot(); err != nil {
		t.Fatalf("reboot: %v", err)
	}
	k.Run(500)
	s2 := k.Machine().Snapshot()
	if !s1.Equal(s2) {
		t.Error("two boots of the same configuration diverged")
	}
}
