package kernel

// Per-trap kernel-service footprints, exported for tools that model the
// kernel's behaviour from outside (package staticflow consumes this table to
// build colour transfer functions for TRAP instructions, and the seplint
// rule trap-summary-sync holds it in sync with layout.go).
//
// A footprint is written against the CALLING regime: the save-area slot
// offsets are relative to SaveBase(i) for the caller i, so the colour of
// every slot named here is the caller's own colour — the table is
// regime-indexed by construction, never a join over all regimes. The slots
// are taken from the service paths in kernel.go: every service enters
// through saveCurrent (which writes the caller's R0..R5, SP, PC and PSW
// slots) and leaves through resume (which reads them back), so those base
// slots appear in every footprint; the per-service extras are the slots the
// service switch itself touches.

// RegEffect classifies what a kernel-written register value reveals to the
// calling regime.
type RegEffect int

// RegEffect values.
const (
	// EffKernelOwn marks a value the kernel produced about the caller's own
	// view (a status flag, an occupancy count): it carries the caller's
	// colour.
	EffKernelOwn RegEffect = iota
	// EffConfig marks a static configuration constant (the regime index):
	// it carries the lattice bottom.
	EffConfig
	// EffChannelIn marks a datum imported from a channel peer: it is
	// relabelled at the cut endpoint, or flow-checked when channels are
	// modelled uncut.
	EffChannelIn
)

// RegWrite is one caller register a service writes on return, with the
// classification of the written value.
type RegWrite struct {
	Reg    int
	Effect RegEffect
}

// TrapFootprint is the read/write footprint of one kernel service.
type TrapFootprint struct {
	Code Word
	Name string

	// ReadRegs are the caller registers the service consumes as arguments
	// (their colour reaches kernel data, never another regime's view).
	ReadRegs []int
	// WriteRegs are the caller registers the service writes on return; all
	// other registers ride across the trap unchanged (saved and restored
	// through the caller's own save area).
	WriteRegs []RegWrite

	// SaveReads and SaveWrites are save-area slot offsets (relative to the
	// caller's SaveBase) the service path reads and writes.
	SaveReads  []Word
	SaveWrites []Word

	// ChanOutReg is the caller register whose value leaves through a
	// configured channel (-1: none) — the SEND endpoint X1. ChanInReg is
	// the register that receives a channel datum (-1: none) — the RECV
	// endpoint X2.
	ChanOutReg int
	ChanInReg  int

	// Sched reports that the service may hand the CPU to another regime,
	// touching the kernel's scheduling variable (SchedCurrentAddr).
	Sched bool
}

// saveBaseSlots are the slots every service touches: saveCurrent writes the
// caller's registers and trap frame on entry, resume reads them back on the
// way out.
func saveBaseSlots() []Word {
	return []Word{
		saveR0, saveR0 + 1, saveR0 + 2, saveR0 + 3, saveR0 + 4, saveR0 + 5,
		saveSP, savePC, savePSW,
	}
}

func withSlots(extra ...Word) []Word { return append(saveBaseSlots(), extra...) }

// Footprints returns one TrapFootprint per kernel service, in service-code
// order. The slice is freshly built on each call; callers may mutate it.
func Footprints() []TrapFootprint {
	return []TrapFootprint{
		{
			Code: TrapSwap, Name: TrapName(TrapSwap),
			// scheduleNext reads every regime's run state and pending word,
			// but only the caller's slots are part of the caller's footprint;
			// the decision itself is the scheduling variable changing hands.
			SaveReads:  withSlots(saveState, savePending),
			SaveWrites: saveBaseSlots(),
			ChanOutReg: -1, ChanInReg: -1,
			Sched: true,
		},
		{
			Code: TrapSend, Name: TrapName(TrapSend),
			ReadRegs:   []int{0, 1},
			WriteRegs:  []RegWrite{{Reg: 0, Effect: EffKernelOwn}},
			SaveReads:  saveBaseSlots(),
			SaveWrites: saveBaseSlots(),
			ChanOutReg: 1, ChanInReg: -1,
		},
		{
			Code: TrapRecv, Name: TrapName(TrapRecv),
			ReadRegs: []int{0},
			WriteRegs: []RegWrite{
				{Reg: 0, Effect: EffKernelOwn},
				{Reg: 1, Effect: EffChannelIn},
			},
			SaveReads:  saveBaseSlots(),
			SaveWrites: saveBaseSlots(),
			ChanOutReg: -1, ChanInReg: 1,
		},
		{
			Code: TrapIRQOn, Name: TrapName(TrapIRQOn),
			SaveReads:  saveBaseSlots(),
			SaveWrites: withSlots(saveIPL),
			ChanOutReg: -1, ChanInReg: -1,
		},
		{
			Code: TrapIRQOff, Name: TrapName(TrapIRQOff),
			SaveReads:  saveBaseSlots(),
			SaveWrites: withSlots(saveIPL),
			ChanOutReg: -1, ChanInReg: -1,
		},
		{
			Code: TrapPoll, Name: TrapName(TrapPoll),
			ReadRegs: []int{0},
			WriteRegs: []RegWrite{
				{Reg: 0, Effect: EffKernelOwn},
				{Reg: 1, Effect: EffKernelOwn},
			},
			SaveReads:  saveBaseSlots(),
			SaveWrites: saveBaseSlots(),
			ChanOutReg: -1, ChanInReg: -1,
		},
		{
			Code: TrapHalt, Name: TrapName(TrapHalt),
			SaveReads:  saveBaseSlots(),
			SaveWrites: withSlots(saveState),
			ChanOutReg: -1, ChanInReg: -1,
			Sched: true,
		},
		{
			Code: TrapWaitIRQ, Name: TrapName(TrapWaitIRQ),
			SaveReads:  withSlots(savePending),
			SaveWrites: withSlots(saveState),
			ChanOutReg: -1, ChanInReg: -1,
			Sched: true,
		},
		{
			Code: TrapID, Name: TrapName(TrapID),
			WriteRegs:  []RegWrite{{Reg: 0, Effect: EffConfig}},
			SaveReads:  saveBaseSlots(),
			SaveWrites: saveBaseSlots(),
			ChanOutReg: -1, ChanInReg: -1,
		},
	}
}

// FootprintFor returns the footprint of a service code.
func FootprintFor(code Word) (TrapFootprint, bool) {
	for _, fp := range Footprints() {
		if fp.Code == code {
			return fp, true
		}
	}
	return TrapFootprint{}, false
}
