package kernel_test

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// Adapter states and inputs must survive the Portable round trip exactly:
// a decoded state restores to the same abstractions and the same future
// behaviour, and a decoded input is extract-identical to the original.
func TestAdapterPortableRoundTrip(t *testing.T) {
	a := adapterSystem(t)
	var port model.Portable = a

	rng := rand.New(rand.NewSource(7))
	a.Randomize(rng)
	ref := a.Save()
	phiA, phiB := a.Abstract("a"), a.Abstract("b")

	b, err := port.EncodeState(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Disturb the live system, then restore through the codec.
	a.Randomize(rng)
	got, err := port.DecodeState(b)
	if err != nil {
		t.Fatal(err)
	}
	a.Restore(got)
	if a.Abstract("a") != phiA || a.Abstract("b") != phiB {
		t.Fatal("decoded state has different abstractions")
	}
	// Equal futures from the decoded state.
	for i := 0; i < 20; i++ {
		a.ApplyInput(nil)
		a.Step()
	}
	after := a.Abstract("a") + a.Abstract("b")
	a.Restore(ref)
	for i := 0; i < 20; i++ {
		a.ApplyInput(nil)
		a.Step()
	}
	if a.Abstract("a")+a.Abstract("b") != after {
		t.Error("decoded state diverged from original under stepping")
	}

	// Inputs: nil maps to no bytes and back to nil; a random InputVec
	// round-trips extract-identically for every colour.
	if eb, err := port.EncodeInput(nil); err != nil || eb != nil {
		t.Fatalf("EncodeInput(nil) = %v, %v", eb, err)
	}
	if in, err := port.DecodeInput(nil); err != nil || in != nil {
		t.Fatalf("DecodeInput(nil) = %v, %v", in, err)
	}
	in := a.RandomInput(rng)
	ib, err := port.EncodeInput(in)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := port.DecodeInput(ib)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Colours() {
		if a.ExtractInput(c, in2) != a.ExtractInput(c, in) {
			t.Errorf("decoded input differs for colour %s", c)
		}
	}
}

func TestAdapterDecodeStateRejectsGarbage(t *testing.T) {
	a := adapterSystem(t)
	if _, err := a.DecodeState(nil); err == nil {
		t.Error("decoded empty state")
	}
	if _, err := a.DecodeState([]byte{2}); err == nil {
		t.Error("decoded state with bad death flag")
	}
	if _, err := a.DecodeState([]byte{0, 1, 2, 3}); err == nil {
		t.Error("decoded state with garbage snapshot")
	}
	if _, err := a.DecodeInput([]byte("{")); err == nil {
		t.Error("decoded truncated input JSON")
	}
}
