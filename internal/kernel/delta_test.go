package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/model"
)

// mutateAdapter drives one random transition through the model.SharedSystem
// surface, the same entry points the separability checkers use.
func mutateAdapter(a *kernel.Adapter, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0, 1:
		a.Step()
	case 2:
		a.ApplyInput(a.RandomInput(rng))
	case 3:
		cs := a.Colours()
		a.PerturbOutside(cs[rng.Intn(len(cs))], rng)
	}
}

// abstractAll renders the full per-colour Φ table; it goes through
// renderPhi, never the digest cache, so it is the ground truth the cached
// digests must agree with.
func abstractAll(a *kernel.Adapter) map[model.Colour]string {
	out := map[model.Colour]string{}
	for _, c := range a.Colours() {
		out[c] = a.Abstract(c)
	}
	return out
}

// TestCheckpointRollbackMatchesRestore is the adapter-level differential
// test: Checkpoint/Rollback must land on exactly the machine state and Φ
// abstractions a full snapshot recorded, across repeated rollbacks.
func TestCheckpointRollbackMatchesRestore(t *testing.T) {
	a := adapterSystem(t)
	rng := rand.New(rand.NewSource(11))
	a.Randomize(rng)

	for round := 0; round < 10; round++ {
		ref := a.K.Machine().Snapshot()
		want := abstractAll(a)

		cp := a.Checkpoint()
		if cp == nil {
			t.Fatal("Checkpoint returned nil on a fresh adapter")
		}
		if a.Checkpoint() != nil {
			t.Fatal("nested Checkpoint should return nil")
		}
		for sub := 0; sub < 3; sub++ {
			n := rng.Intn(40)
			for i := 0; i < n; i++ {
				mutateAdapter(a, rng)
			}
			a.Rollback(cp)
			if !a.K.Machine().Snapshot().Equal(ref) {
				t.Fatalf("round %d sub %d: rolled-back machine state differs from snapshot", round, sub)
			}
			if got := abstractAll(a); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("round %d sub %d: Φ abstractions differ after rollback", round, sub)
			}
		}
		a.Release(cp)
		for i := 0; i < 8; i++ {
			mutateAdapter(a, rng)
		}
	}
}

// TestIncrementalDigestMatchesOracle pins the digest cache against its
// oracle: at every point of a checkpointed random walk, AbstractDigest
// (which may serve a cached, incrementally-validated value) must equal the
// FNV digest of a freshly rendered Φ string.
func TestIncrementalDigestMatchesOracle(t *testing.T) {
	a := adapterSystem(t)
	rng := rand.New(rand.NewSource(23))
	a.Randomize(rng)
	colours := a.Colours()

	check := func(step string) {
		t.Helper()
		for _, c := range colours {
			got := a.AbstractDigest(c)
			want := model.DigestString(a.Abstract(c))
			if got != want {
				t.Fatalf("%s: AbstractDigest(%s) = %#x, oracle = %#x", step, c, got, want)
			}
		}
	}

	check("before checkpoint")
	for round := 0; round < 6; round++ {
		cp := a.Checkpoint()
		if cp == nil {
			t.Fatal("Checkpoint returned nil")
		}
		for sub := 0; sub < 3; sub++ {
			for i := 0; i < 25; i++ {
				mutateAdapter(a, rng)
				if i%5 == 0 {
					check(fmt.Sprintf("round %d sub %d step %d", round, sub, i))
				}
			}
			check(fmt.Sprintf("round %d sub %d before rollback", round, sub))
			a.Rollback(cp)
			check(fmt.Sprintf("round %d sub %d after rollback", round, sub))
		}
		a.Release(cp)
		check(fmt.Sprintf("round %d after release", round))
		for i := 0; i < 5; i++ {
			mutateAdapter(a, rng)
		}
	}
}

// TestClassifyOp spot-checks the per-opcode classifier the metrics
// attribution rides on.
func TestClassifyOp(t *testing.T) {
	a := adapterSystem(t)
	cases := []struct{ op, want string }{
		{"kernel:handler", "kernel"},
		{"idle", "idle"},
		{"field-irq:tty0", "field-irq"},
		{"user:red@0040:unfetchable", "user:unfetchable"},
		{"user:red@0040:zzzz", "user"}, // unparsable instruction word
	}
	for _, tc := range cases {
		if got := a.ClassifyOp(model.OpID(tc.op)); got != tc.want {
			t.Fatalf("ClassifyOp(%q) = %q, want %q", tc.op, got, tc.want)
		}
	}
	// A user op with a hex instruction word buckets by decoded mnemonic:
	// "user:<MNEMONIC>", never the raw PC-bearing OpID.
	got := a.ClassifyOp("user:red@0040:1234")
	if len(got) <= len("user:") || got[:5] != "user:" || got == "user:red@0040:1234" {
		t.Fatalf("ClassifyOp(user:red@0040:1234) = %q, want a user:<mnemonic> bucket", got)
	}
	// The live system's own NextOp must classify via the OpClassifier hook.
	op := a.NextOp()
	if cl := model.OpClass(a, op); cl != a.ClassifyOp(op) {
		t.Fatalf("OpClass(%q) = %q, ClassifyOp = %q", op, cl, a.ClassifyOp(op))
	}
}
