package kernel

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/machine"
	"repro/internal/model"
)

// RegimePSW returns the user-visible PSW bits (condition codes) of regime
// i: live when the regime holds the CPU, from the save area otherwise.
func (k *Kernel) RegimePSW(i int) Word {
	if i == k.current() && machine.IsUser(k.m.PSW()) {
		return k.m.PSW() & (machine.FlagN | machine.FlagZ | machine.FlagV | machine.FlagC)
	}
	return k.m.ReadPhys(saveBase(i)+savePSW) &
		(machine.FlagN | machine.FlagZ | machine.FlagV | machine.FlagC)
}

// InputVec is one external stimulus: words delivered to named input-sink
// devices at this time step.
type InputVec map[string][]Word

// OutputVec is the observable output state: the cumulative output of every
// output-source device.
type OutputVec map[string][]Word

// Adapter presents a booted SUE-Go system as the shared system of the
// paper's Appendix model, so that package separability can check the six
// conditions against it.
//
// The mapping is:
//
//	S       = machine.Snapshot (CPU + MMU + RAM + devices) plus kernel death
//	OPS     = {user instruction, kernel service, interrupt fielding,
//	           virtual interrupt delivery, idle} — one Kernel.StepCPU each
//	INPUT   = inject stimulus words into input devices, then tick devices
//	OUTPUT  = cumulative device outputs (a pure function of S)
//	COLOUR  = owner of the interrupt about to be fielded, else the current
//	          regime when in user mode, else the kernel pseudo-colour
//	EXTRACT = the device entries owned by a colour
//	Φ^c     = partition RAM + register file + run/pending/IPL words +
//	          owned-device state + the regime's view of each channel
type Adapter struct {
	K *Kernel

	colours []model.Colour
	// ownedSinks/ownedSources: device name -> owning colour.
	owner map[string]model.Colour

	// PerturbWords bounds how many words each perturbation touches.
	PerturbWords int

	// phi caches per-regime Φ digests during delta checkpoints; built
	// lazily on first Checkpoint (see phicache.go).
	phi *phiCache
}

// KernelColour is returned by Colour for states where the next operation
// is the kernel's own (the idle loop) rather than any user's.
const KernelColour model.Colour = "_kernel"

// NewAdapter wraps a booted kernel.
func NewAdapter(k *Kernel) *Adapter {
	a := &Adapter{K: k, owner: map[string]model.Colour{}, PerturbWords: 8}
	for _, r := range k.cfg.Regimes {
		a.colours = append(a.colours, model.Colour(r.Name))
		for _, d := range r.Devices {
			a.owner[d.Name()] = model.Colour(r.Name)
		}
	}
	return a
}

// Colours implements model.SharedSystem.
func (a *Adapter) Colours() []model.Colour { return append([]model.Colour(nil), a.colours...) }

// adapterState is the StateRef implementation.
type adapterState struct {
	snap *machine.Snapshot
	dead bool
}

// Save implements model.SharedSystem.
func (a *Adapter) Save() model.StateRef {
	return &adapterState{snap: a.K.m.Snapshot(), dead: a.K.dead}
}

// Restore implements model.SharedSystem.
func (a *Adapter) Restore(s model.StateRef) {
	st := s.(*adapterState)
	if err := a.K.m.Restore(st.snap); err != nil {
		panic(fmt.Sprintf("kernel adapter: restore: %v", err))
	}
	a.K.dead = st.dead
}

// Colour implements model.SharedSystem: the colour on whose behalf the
// next operation will execute.
func (a *Adapter) Colour() model.Colour {
	k := a.K
	if k.dead || k.m.Halted() {
		return KernelColour
	}
	if k.cfg.FixedSlice > 0 && k.m.ReadPhys(KData+kdSliceLeft) == 0 {
		// The next operation is the slice-boundary rotation: pure kernel
		// scheduling work.
		return KernelColour
	}
	if di, ok := k.m.PendingDevice(); ok {
		// The next operation fields this device's interrupt: it executes
		// on behalf of the device's owner.
		if owner := k.devOwner[di]; owner >= 0 {
			return model.Colour(k.cfg.Regimes[owner].Name)
		}
		return KernelColour
	}
	if machine.IsUser(k.m.PSW()) {
		return model.Colour(k.cfg.Regimes[k.current()].Name)
	}
	return KernelColour
}

// NextOp implements model.SharedSystem.
func (a *Adapter) NextOp() model.OpID {
	k := a.K
	if k.dead || k.m.Halted() {
		return "dead"
	}
	if k.cfg.FixedSlice > 0 && k.m.ReadPhys(KData+kdSliceLeft) == 0 {
		return "kernel:slice-switch"
	}
	if di, ok := k.m.PendingDevice(); ok {
		return model.OpID("field-irq:" + k.m.Devices()[di].Name())
	}
	if machine.IsUser(k.m.PSW()) {
		cur := k.current()
		if j := k.deliverablePending(); j >= 0 {
			return model.OpID(fmt.Sprintf("deliver-irq:%s:%d", k.cfg.Regimes[cur].Name, j))
		}
		pc := k.m.PC()
		instr, ok := k.regimeRead(cur, pc)
		if !ok {
			return model.OpID(fmt.Sprintf("user:%s@%04x:unfetchable", k.cfg.Regimes[cur].Name, pc))
		}
		return model.OpID(fmt.Sprintf("user:%s@%04x:%04x", k.cfg.Regimes[cur].Name, pc, instr))
	}
	return "kernel:idle"
}

// Step implements model.SharedSystem: one CPU operation (device activity
// belongs to ApplyInput).
func (a *Adapter) Step() { a.K.StepCPU() }

// ApplyInput implements model.SharedSystem: deliver stimuli to the input
// devices, then let every device tick once.
func (a *Adapter) ApplyInput(i model.Input) {
	if i != nil {
		iv := i.(InputVec)
		for _, d := range a.K.m.Devices() {
			if _, ok := d.(machine.InputSink); ok {
				if ws := iv[d.Name()]; len(ws) > 0 {
					// Injection goes through the machine so delta tracking
					// sees the device mutation.
					a.K.m.Inject(d, ws)
				}
			}
		}
	}
	a.K.m.TickDevices()
}

// CurrentOutput implements model.SharedSystem.
func (a *Adapter) CurrentOutput() model.Output {
	ov := OutputVec{}
	for _, d := range a.K.m.Devices() {
		if src, ok := d.(machine.OutputSource); ok {
			ov[d.Name()] = src.PeekOutput()
		}
	}
	return ov
}

// phiSink is the common subset of strings.Builder and model.Digest64 that
// the Φ renderer writes through: feeding the identical byte stream to
// either guarantees AbstractDigest is exactly the FNV-1a hash of the
// string Abstract returns.
type phiSink interface {
	io.Writer
	WriteString(s string) (int, error)
	WriteByte(b byte) error
}

// hexWord appends a word as four hex digits without fmt overhead (Abstract
// is the hot path of randomized checking).
func hexWord(b phiSink, w Word) {
	const digits = "0123456789abcdef"
	b.WriteByte(digits[w>>12&0xF])
	b.WriteByte(digits[w>>8&0xF])
	b.WriteByte(digits[w>>4&0xF])
	b.WriteByte(digits[w&0xF])
}

// Abstract implements model.SharedSystem: Φ^c as a canonical string.
func (a *Adapter) Abstract(c model.Colour) string {
	var b strings.Builder
	a.renderPhi(c, &b)
	return b.String()
}

// AbstractDigest implements model.Digester: the FNV-1a 64-bit digest of
// the canonical Φ^c encoding, streamed without materializing the string.
// This is the comparison the checkers' hot paths use; both views render
// through the same code path, so they hash the same bytes by construction.
// During a delta checkpoint the digest is served from the per-regime cache
// when provably fresh (see phicache.go); the full rendering stays the
// oracle, so the returned value is identical either way.
func (a *Adapter) AbstractDigest(c model.Colour) uint64 {
	if dig, ok := a.cachedDigest(c); ok {
		return dig
	}
	d := model.NewDigest64()
	a.renderPhi(c, d)
	dig := d.Sum64()
	a.storeDigest(c, dig)
	return dig
}

// renderPhi writes the canonical Φ^c encoding of the current state into b.
func (a *Adapter) renderPhi(c model.Colour, b phiSink) {
	k := a.K
	i := k.RegimeIndex(string(c))
	if i < 0 {
		return
	}
	r := k.cfg.Regimes[i]

	// Register file and control state, as the regime would observe it.
	for reg := 0; reg < 6; reg++ {
		fmt.Fprintf(b, "r%d=%04x;", reg, k.RegimeReg(i, reg))
	}
	fmt.Fprintf(b, "sp=%04x;pc=%04x;cc=%x;", k.RegimeReg(i, machine.RegSP),
		k.RegimeReg(i, machine.RegPC), k.RegimePSW(i))
	sb := saveBase(i)
	fmt.Fprintf(b, "st=%x;pend=%04x;ipl=%x;", k.m.ReadPhys(sb+saveState),
		k.m.ReadPhys(sb+savePending), k.m.ReadPhys(sb+saveIPL))

	// The partition, word by word.
	if builder, ok := b.(*strings.Builder); ok {
		builder.Grow(int(r.Size)*4 + 64)
	}
	b.WriteString("mem=")
	for off := Word(0); off < r.Size; off++ {
		hexWord(b, k.m.ReadPhys(r.Base+off))
	}
	b.WriteByte(';')

	// Owned devices.
	for _, d := range r.Devices {
		b.WriteString("dev:")
		b.WriteString(d.Name())
		b.WriteByte('=')
		for _, w := range d.SnapshotState() {
			hexWord(b, w)
		}
		b.WriteByte(';')
	}

	// Channel views: what this regime could learn via SEND/RECV/POLL.
	for ci, ch := range k.cfg.Channels {
		base := k.chanBase(ci)
		capa := k.m.ReadPhys(base + 3)
		switch string(c) {
		case ch.From:
			// The sender observes only the free space.
			fmt.Fprintf(b, "ch:%s:free=%d;", ch.Name, capa-k.m.ReadPhys(base+2))
		case ch.To:
			if k.cfg.CutChannels {
				cnt := k.m.ReadPhys(base + 6)
				head := k.m.ReadPhys(base + 4)
				fmt.Fprintf(b, "ch:%s:rd=%d:", ch.Name, cnt)
				for j := Word(0); j < cnt; j++ {
					hexWord(b, k.m.ReadPhys(base+8+capa+(head+j)%capa))
				}
				b.WriteByte(';')
			} else {
				cnt := k.m.ReadPhys(base + 2)
				head := k.m.ReadPhys(base + 0)
				fmt.Fprintf(b, "ch:%s:rd=%d:", ch.Name, cnt)
				for j := Word(0); j < cnt; j++ {
					hexWord(b, k.m.ReadPhys(base+8+(head+j)%capa))
				}
				b.WriteByte(';')
			}
		}
	}
}

// ClassifyOp implements model.OpClassifier: collapse OpIDs (which embed
// program counters and instruction words — unbounded cardinality) into
// stable metric buckets. User operations are bucketed by decoded mnemonic:
// "user:red@0040:1234" becomes "user:MOV".
func (a *Adapter) ClassifyOp(op model.OpID) string {
	s := string(op)
	if strings.HasPrefix(s, "user:") {
		if i := strings.LastIndexByte(s, ':'); i >= 0 {
			suf := s[i+1:]
			if suf == "unfetchable" {
				return "user:unfetchable"
			}
			if w, err := strconv.ParseUint(suf, 16, 16); err == nil {
				return "user:" + machine.OpName(machine.DecodeOp(Word(w)))
			}
		}
		return "user"
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// ExtractInput implements model.SharedSystem.
func (a *Adapter) ExtractInput(c model.Colour, i model.Input) string {
	if i == nil {
		return ""
	}
	iv := i.(InputVec)
	var names []string
	for name := range iv {
		if a.owner[name] == c {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=", name)
		for _, w := range iv[name] {
			fmt.Fprintf(&b, "%04x", w)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// ExtractOutput implements model.SharedSystem.
func (a *Adapter) ExtractOutput(c model.Colour, o model.Output) string {
	ov := o.(OutputVec)
	var names []string
	for name := range ov {
		if a.owner[name] == c {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=", name)
		for _, w := range ov[name] {
			fmt.Fprintf(&b, "%04x", w)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Clone implements model.Replicable: it builds a fresh machine carrying
// replicas of every attached device, binds an identically configured
// kernel to it, and copies the current architectural state across via a
// snapshot, yielding a fully independent system for a parallel checker
// worker. Returns nil when any attached device cannot be replicated (link
// endpoints are wired to shared environment state, so systems using them
// fall back to single-threaded checking).
func (a *Adapter) Clone() model.SharedSystem {
	k := a.K
	m2 := machine.New(k.m.RAMWords())
	m2.SetTranslation(k.m.TranslationEnabled())
	devByName := map[string]machine.Device{}
	for _, d := range k.m.Devices() {
		rep, ok := d.(machine.Replicator)
		if !ok {
			return nil
		}
		nd := rep.Replicate()
		if nd == nil {
			return nil
		}
		// Attaching in bus order reproduces register blocks and vectors.
		m2.Attach(nd)
		devByName[nd.Name()] = nd
	}

	cfg := k.cfg
	cfg.Regimes = append([]RegimeSpec(nil), k.cfg.Regimes...)
	for ri := range cfg.Regimes {
		r := &cfg.Regimes[ri]
		devs := make([]machine.Device, len(r.Devices))
		for di, d := range r.Devices {
			devs[di] = devByName[d.Name()]
		}
		r.Devices = devs
	}
	cfg.Channels = append([]ChannelSpec(nil), k.cfg.Channels...)

	k2, err := New(m2, cfg)
	if err != nil {
		return nil
	}
	// Boot initializes the kernel's bookkeeping (fault/instruction
	// counters) and proves the configuration loads; the snapshot restore
	// then overwrites the booted state with the original's current state.
	if err := k2.Boot(); err != nil {
		return nil
	}
	if err := m2.Restore(k.m.Snapshot()); err != nil {
		return nil
	}
	k2.dead = k.dead
	k2.Cause = k.Cause

	a2 := NewAdapter(k2)
	a2.PerturbWords = a.PerturbWords
	return a2
}

// --- Perturbable ---

// Randomize implements model.Perturbable: reboot and run a random prefix
// with random stimuli, landing in a random reachable state.
func (a *Adapter) Randomize(r model.Rand) {
	if err := a.K.Boot(); err != nil {
		panic(fmt.Sprintf("kernel adapter: boot: %v", err))
	}
	steps := r.Intn(400)
	for s := 0; s < steps; s++ {
		if r.Intn(8) == 0 {
			a.ApplyInput(a.RandomInput(r))
		} else {
			a.ApplyInput(nil)
		}
		a.Step()
	}
}

// RandomInput implements model.Perturbable.
func (a *Adapter) RandomInput(r model.Rand) model.Input {
	iv := InputVec{}
	for _, d := range a.K.m.Devices() {
		if _, ok := d.(machine.InputSink); !ok {
			continue
		}
		if r.Intn(3) == 0 {
			n := 1 + r.Intn(2)
			ws := make([]Word, n)
			for j := range ws {
				ws[j] = Word(r.Uint32() & 0xff)
			}
			iv[d.Name()] = ws
		}
	}
	return iv
}

// RandomInputMatching implements model.Perturbable: keep c's components of
// i, randomize the rest.
func (a *Adapter) RandomInputMatching(c model.Colour, i model.Input, r model.Rand) model.Input {
	out := InputVec{}
	var orig InputVec
	if i != nil {
		orig = i.(InputVec)
	}
	for _, d := range a.K.m.Devices() {
		if _, ok := d.(machine.InputSink); !ok {
			continue
		}
		name := d.Name()
		if a.owner[name] == c {
			if ws, ok := orig[name]; ok {
				out[name] = append([]Word(nil), ws...)
			}
			continue
		}
		if r.Intn(3) == 0 {
			n := 1 + r.Intn(2)
			ws := make([]Word, n)
			for j := range ws {
				ws[j] = Word(r.Uint32() & 0xff)
			}
			out[name] = ws
		}
	}
	return out
}

// PerturbOutside implements model.Perturbable: scramble state that does
// not belong to colour c — other partitions, other save areas, the kernel
// scratch word, and channel-buffer words invisible to c — while leaving
// Φ^c, the machine's interrupt posture, and the scheduling state intact.
func (a *Adapter) PerturbOutside(c model.Colour, r model.Rand) {
	k := a.K
	m := k.m
	cur := k.current()
	curLive := machine.IsUser(m.PSW())

	for ri, spec := range k.cfg.Regimes {
		if model.Colour(spec.Name) == c {
			continue
		}
		// Partition words: always the first few (context-switch bugs love
		// partition bases), plus a random sample.
		for off := Word(0); off < 4 && off < spec.Size; off++ {
			m.WritePhys(spec.Base+off, Word(r.Uint32()))
		}
		for t := 0; t < a.PerturbWords; t++ {
			off := Word(r.Uint32()) % spec.Size
			m.WritePhys(spec.Base+off, Word(r.Uint32()))
		}
		// Register context: live machine registers when this regime holds
		// the CPU, its save area otherwise.
		if ri == cur && curLive {
			for reg := 0; reg < 6; reg++ {
				if r.Intn(2) == 0 {
					m.SetReg(reg, Word(r.Uint32()))
				}
			}
		} else {
			sb := saveBase(ri)
			for reg := Word(0); reg < 6; reg++ {
				if r.Intn(2) == 0 {
					m.WritePhys(sb+saveR0+reg, Word(r.Uint32()))
				}
			}
		}
	}

	// Kernel scratch word: no regime's abstract state includes it.
	m.WritePhys(KData+kdScratch, Word(r.Uint32()))

	// Channel buffers: words c cannot observe. For channels c sends on,
	// the buffered *contents* are invisible (only free space is visible);
	// for channels between other colours, contents are invisible to c
	// (counts stay put so the owners' views are preserved too — the
	// perturbation must only vary along directions outside Φ^c, and
	// changing another colour's visible count is legitimate but makes
	// counterexample interpretation noisier than necessary).
	for ci, ch := range k.cfg.Channels {
		base := k.chanBase(ci)
		capa := k.m.ReadPhys(base + 3)
		if capa == 0 {
			continue
		}
		sendContentsInvisible := ch.To != string(c)
		if k.cfg.CutChannels {
			// In the cut system buffer A's contents are invisible to
			// everyone, and buffer B (the read end) belongs to ch.To.
			if sendContentsInvisible {
				// Perturb unused slots of buffer A only (outside count
				// window) — count itself is visible to the sender.
				a.perturbRingSlack(base, 8, capa, r)
			}
		} else {
			if sendContentsInvisible {
				// Contents of the queue are visible only to ch.To.
				a.perturbRingSlack(base, 8, capa, r)
			}
		}
	}
}

// perturbRingSlack randomizes ring-buffer slots outside the live window
// [head, head+count): those words are invisible to every colour.
func (a *Adapter) perturbRingSlack(base, bufOff, capa Word, r model.Rand) {
	m := a.K.m
	head := m.ReadPhys(base + 0)
	count := m.ReadPhys(base + 2)
	for j := Word(0); j < capa; j++ {
		idx := (head + count + j) % capa
		if j < capa-count {
			if r.Intn(2) == 0 {
				m.WritePhys(base+bufOff+idx, Word(r.Uint32()))
			}
		}
	}
}
