package kernel

import (
	"repro/internal/machine"
	"repro/internal/model"
)

// Incremental Φ digests: per-regime digest caching driven by the machine's
// delta write-barrier, so that during a checkpointed condition sweep most
// AbstractDigest calls cost O(words written since the checkpoint) instead
// of re-rendering the regime's whole abstraction.
//
// The idea: each regime's Φ^c is a pure function of (a) a fixed set of RAM
// words — its partition, its save area, the channel areas it can see —
// (b) its owned devices' state, and (c), only while the regime is current
// and in user mode, the live register file and condition codes. While a
// machine delta is active, every RAM write is journaled and every device
// mutation bumps that device's version counter, so a digest computed
// earlier in the same delta generation is provably still fresh when:
//
//   - no journaled write since the checkpoint lands in the regime's RAM
//     footprint (a per-word bitmask, one bit per regime),
//   - every owned device's version counter is unchanged (versions rewind
//     on rollback, so checkpoint-time entries revalidate), and
//   - the live-CPU contribution is unchanged: the regime's "live" status
//     (current && user mode) matches, and, when live, the stored register
//     file and condition codes compare equal. Registers are compared
//     rather than write-barriered because the interpreter mutates them on
//     nearly every instruction.
//
// Entries are stored only at "pristine" moments — when the undo log is
// empty, i.e. right at the checkpoint or right after a rollback, which by
// construction denote the identical RAM/device state. Validity then only
// requires scanning the full (first-touch-deduped) journal: any footprint
// word written since the checkpoint invalidates, which over-approximates
// staleness but never under-approximates it. The FNV digest of the full
// rendering (renderPhi) remains the oracle: cache hit or miss, the value
// returned is always exactly what re-rendering would produce, so proof
// soundness is untouched — see the differential tests in delta_test.go.
type phiCache struct {
	// mask[a] has bit ri set when RAM word a is in regime ri's Φ read set.
	// Over-marking is safe (spurious recomputes); under-marking is not.
	mask    []uint32
	ridx    map[model.Colour]int
	owned   [][]int // regime index -> owned devices' machine bus indices
	entries []phiEntry
}

type phiEntry struct {
	valid  bool
	gen    uint64 // machine delta generation the entry was computed under
	digest uint64
	live   bool // regime held the CPU in user mode at store time
	regs   [8]Word
	cc     Word
	devVer []uint64
}

const ccMask = machine.FlagN | machine.FlagZ | machine.FlagV | machine.FlagC

// ensurePhiCache builds the footprint mask once per adapter (post-boot, so
// channel areas are laid out). More than 32 regimes would overflow the
// per-word bitmask; such systems simply run uncached.
func (a *Adapter) ensurePhiCache() {
	if a.phi != nil {
		return
	}
	k := a.K
	if len(k.cfg.Regimes) > 32 {
		a.phi = &phiCache{}
		return
	}
	pc := &phiCache{
		mask:    make([]uint32, k.m.RAMWords()),
		ridx:    map[model.Colour]int{},
		owned:   make([][]int, len(k.cfg.Regimes)),
		entries: make([]phiEntry, len(k.cfg.Regimes)),
	}
	mark := func(base, size Word, bits uint32) {
		for off := Word(0); off < size; off++ {
			if w := int(base + off); w < len(pc.mask) {
				pc.mask[w] |= bits
			}
		}
	}
	for ri, r := range k.cfg.Regimes {
		pc.ridx[model.Colour(r.Name)] = ri
		bit := uint32(1) << ri
		mark(r.Base, r.Size, bit)
		mark(saveBase(ri), saveStride, bit)
		for _, d := range r.Devices {
			for mi, dd := range k.m.Devices() {
				if dd == d {
					pc.owned[ri] = append(pc.owned[ri], mi)
				}
			}
		}
		pc.entries[ri].devVer = make([]uint64, len(pc.owned[ri]))
	}
	for ci, ch := range k.cfg.Channels {
		var bits uint32
		if fi, ok := pc.ridx[model.Colour(ch.From)]; ok {
			bits |= 1 << fi
		}
		if ti, ok := pc.ridx[model.Colour(ch.To)]; ok {
			bits |= 1 << ti
		}
		// Under the ChannelAlias leak chanBase maps every channel onto
		// channel 0's area, so that area accumulates every aliased
		// channel's From/To bits — conservative and correct.
		capi := ci
		if k.cfg.Leaks.ChannelAlias && ci > 0 {
			capi = 0
		}
		mark(k.chanBase(ci), 8+2*k.chanCap[capi], bits)
	}
	a.phi = pc
}

// cachedDigest returns regime c's cached Φ digest when provably fresh.
func (a *Adapter) cachedDigest(c model.Colour) (uint64, bool) {
	pc := a.phi
	m := a.K.m
	if pc == nil || pc.mask == nil || !m.DeltaActive() {
		return 0, false
	}
	ri, ok := pc.ridx[c]
	if !ok {
		return 0, false
	}
	e := &pc.entries[ri]
	if !e.valid || e.gen != m.DeltaGen() {
		return 0, false
	}
	bit := uint32(1) << ri
	for _, addr := range m.DeltaAddrs() {
		if pc.mask[addr]&bit != 0 {
			return 0, false
		}
	}
	for di, mi := range pc.owned[ri] {
		if m.DeviceVersion(mi) != e.devVer[di] {
			return 0, false
		}
	}
	live := a.K.current() == ri && machine.IsUser(m.PSW())
	if live != e.live {
		return 0, false
	}
	if live {
		for r := 0; r < 8; r++ {
			if m.Reg(r) != e.regs[r] {
				return 0, false
			}
		}
		if m.PSW()&ccMask != e.cc {
			return 0, false
		}
	}
	return e.digest, true
}

// storeDigest records a freshly computed digest, but only at pristine
// moments (empty undo log): all such moments within one delta generation
// share the identical RAM/device state, which is what makes the full-log
// freshness scan in cachedDigest sound.
func (a *Adapter) storeDigest(c model.Colour, dig uint64) {
	pc := a.phi
	m := a.K.m
	if pc == nil || pc.mask == nil || !m.DeltaActive() || len(m.DeltaAddrs()) != 0 {
		return
	}
	ri, ok := pc.ridx[c]
	if !ok {
		return
	}
	e := &pc.entries[ri]
	e.valid = true
	e.gen = m.DeltaGen()
	e.digest = dig
	e.live = a.K.current() == ri && machine.IsUser(m.PSW())
	if e.live {
		for r := 0; r < 8; r++ {
			e.regs[r] = m.Reg(r)
		}
		e.cc = m.PSW() & ccMask
	}
	for di, mi := range pc.owned[ri] {
		e.devVer[di] = m.DeviceVersion(mi)
	}
}

// adapterCheckpoint is the model.Checkpoint payload: the machine's delta
// plus the kernel-level dead flag — exactly the components adapterState
// restores on the full-snapshot path — and, for DirtyColours, the
// checkpoint-time current regime and device version counters.
type adapterCheckpoint struct {
	delta   *machine.Delta
	dead    bool
	current int
	devVer  []uint64
}

// Checkpoint implements model.Checkpointer. Returns nil (caller falls back
// to Save/Restore) when a delta is already active on the machine.
func (a *Adapter) Checkpoint() model.Checkpoint {
	d := a.K.m.DeltaSnapshot()
	if d == nil {
		return nil
	}
	a.ensurePhiCache()
	cp := &adapterCheckpoint{delta: d, dead: a.K.dead, current: a.K.current()}
	if n := len(a.K.m.Devices()); n > 0 {
		cp.devVer = make([]uint64, n)
		for i := 0; i < n; i++ {
			cp.devVer[i] = a.K.m.DeviceVersion(i)
		}
	}
	return cp
}

// DirtyColours implements model.DirtyTracker over the same per-word
// footprint masks the incremental digest cache uses: the delta journal
// names every RAM word written since the checkpoint (rollbacks clear it),
// each word's mask bit names the regimes whose Φ reads it, device versions
// cover owned-device mutations, and the live-CPU contribution is covered by
// conservatively marking the regimes that held the CPU at either end of the
// window (a regime that was current only transiently in between has its
// registers in its save area by now — journaled words like any other).
func (a *Adapter) DirtyColours(cp model.Checkpoint) (uint64, bool) {
	st, ok := cp.(*adapterCheckpoint)
	if !ok || st.delta == nil {
		return 0, false
	}
	pc := a.phi
	k := a.K
	m := k.m
	if pc == nil || pc.mask == nil || !m.DeltaActive() {
		return 0, false
	}
	if k.dead != st.dead {
		// System-level liveness changed; don't reason about footprints.
		return 0, false
	}
	var mask uint64
	for _, addr := range m.DeltaAddrs() {
		mask |= uint64(pc.mask[addr])
	}
	for ri := range pc.owned {
		for _, mi := range pc.owned[ri] {
			if m.DeviceVersion(mi) != st.devVer[mi] {
				mask |= 1 << uint(ri)
			}
		}
	}
	if cur := st.current; cur >= 0 && cur < len(pc.entries) {
		mask |= 1 << uint(cur)
	}
	if cur := k.current(); cur >= 0 && cur < len(pc.entries) {
		mask |= 1 << uint(cur)
	}
	return mask, true
}

// Rollback implements model.Checkpointer.
func (a *Adapter) Rollback(cp model.Checkpoint) {
	st := cp.(*adapterCheckpoint)
	a.K.m.DeltaRestore(st.delta)
	a.K.dead = st.dead
}

// Release implements model.Checkpointer: roll back, then stop tracking.
func (a *Adapter) Release(cp model.Checkpoint) {
	st := cp.(*adapterCheckpoint)
	a.K.m.DeltaRestore(st.delta)
	a.K.m.EndDelta(st.delta)
	a.K.dead = st.dead
}
