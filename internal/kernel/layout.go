// Package kernel implements SUE-Go, a separation kernel for the SM11
// machine modelled on the RSRE "Secure User Environment" described in the
// paper. Like the SUE it is deliberately minimal:
//
//   - each regime is permanently allocated a fixed partition of real memory;
//   - there is no scheduler beyond round-robin: regimes run until they
//     voluntarily SWAP (or fault);
//   - there is no DMA anywhere in the system, so devices are owned by
//     regimes outright: a regime's device registers are mapped into its
//     address space and the kernel's only I/O duty is to field interrupts
//     (which the hardware vectors through kernel space) and pass them on;
//   - the kernel knows nothing of any security policy — it only provides
//     separation plus the explicitly configured inter-regime channels.
//
// The kernel's code is Go (the "microcode" substitution recorded in
// DESIGN.md) but all kernel *data* — register save areas, channel buffers,
// scheduling state, pending-interrupt words — lives in the kernel's own RAM
// partition, so a machine.Snapshot captures the complete concrete state S
// of the paper's model.
package kernel

import "repro/internal/machine"

// Word aliases the machine word.
type Word = machine.Word

// Kernel memory layout (physical word addresses). The kernel occupies
// [0, KernelEnd); regime partitions are allocated at or above KernelEnd.
const (
	// KStubBase is where trap/interrupt vectors point. Stub address
	// KStubBase+v identifies vector v; the Go kernel intercepts execution
	// the moment the machine lands on a stub. Each stub word holds HALT so
	// an unintercepted entry stops the machine instead of running wild.
	KStubBase Word = 0x080

	// KIdle is a two-instruction idle loop (WAIT; BR .-2) executed in
	// kernel mode at priority 0 when no regime is runnable.
	KIdle Word = 0x0F0

	// KData is the base of the kernel data area.
	KData Word = 0x100

	// KStackTop is the kernel stack top; the stack holds at most one
	// trap frame (two words) at a time because kernel services are atomic.
	KStackTop Word = 0x400

	// KernelEnd is the first address available for regime partitions.
	KernelEnd Word = 0x400
)

// Kernel data area layout, relative to KData.
const (
	kdCurrent   Word = 0 // index of the regime now holding the CPU
	kdNumReg    Word = 1 // number of configured regimes
	kdScratch   Word = 2 // kernel scratch word (the SharedScratch leak exposes it)
	kdSliceLeft Word = 3 // fixed-slice mode: cycles left in the current slice
	kdParked    Word = 4 // fixed-slice mode: 1 when the current regime yielded early
	kdSaves     Word = 16

	// Per-regime save area, stride words each, at kdSaves + i*saveStride.
	saveR0      Word = 0 // R0..R5 at +0..+5
	saveSP      Word = 6
	savePC      Word = 7
	savePSW     Word = 8
	saveState   Word = 9  // regime run state (see RegimeState)
	savePending Word = 10 // pending-interrupt bitmask over owned devices
	saveIPL     Word = 11 // virtual interrupt mask: 0 = open, 1 = masked
	saveStride  Word = 16
)

// RegimeState values stored in a regime's saveState word.
const (
	StateRunnable Word = 1 // eligible for the round-robin
	StateDead     Word = 0 // halted or faulted; never scheduled again
	StateWaitIRQ  Word = 2 // blocked until an owned device interrupt pends
)

// Kernel service (TRAP) codes. Regime programs invoke these with the TRAP
// instruction; arguments and results are passed in registers.
const (
	// TrapSwap yields the CPU to the next runnable regime.
	TrapSwap Word = 0
	// TrapSend sends R1 on channel R0; R0 := 1 on success, 0 if the
	// channel is full or not writable by this regime.
	TrapSend Word = 1
	// TrapRecv receives from channel R0 into R1; R0 := 1 on success, 0 if
	// empty or not readable by this regime.
	TrapRecv Word = 2
	// TrapIRQOn opens the regime's virtual interrupt mask.
	TrapIRQOn Word = 3
	// TrapIRQOff masks the regime's virtual interrupts.
	TrapIRQOff Word = 4
	// TrapPoll sets R1 to the number of words available to receive
	// (if this regime reads channel R0) or the free space (if it writes
	// it); R0 := 1 if the channel is valid for this regime.
	TrapPoll Word = 5
	// TrapHalt stops the regime permanently and yields.
	TrapHalt Word = 6
	// TrapWaitIRQ blocks the regime until one of its devices interrupts.
	TrapWaitIRQ Word = 7
	// TrapID sets R0 to the calling regime's index (regimes may know who
	// they are; they may not know who else exists).
	TrapID Word = 8
)

// TrapName returns the assembler-prelude mnemonic for a kernel service
// code ("SWAP", "SEND", ...), or "TRAP#n" for unknown codes.
func TrapName(code Word) string {
	switch code {
	case TrapSwap:
		return "SWAP"
	case TrapSend:
		return "SEND"
	case TrapRecv:
		return "RECV"
	case TrapIRQOn:
		return "IRQON"
	case TrapIRQOff:
		return "IRQOFF"
	case TrapPoll:
		return "POLL"
	case TrapHalt:
		return "HALTME"
	case TrapWaitIRQ:
		return "WAITIRQ"
	case TrapID:
		return "WHOAMI"
	}
	return "TRAP#" + itoa(code)
}

// itoa formats a small word without pulling fmt into the hot path.
func itoa(w Word) string {
	if w == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for w > 0 {
		i--
		buf[i] = byte('0' + w%10)
		w /= 10
	}
	return string(buf[i:])
}

// Regime virtual address space conventions.
const (
	// RegimeVecBase is the virtual address of the regime's interrupt
	// vector table: word RegimeVecBase+2*j holds the handler address for
	// owned device j.
	RegimeVecBase Word = 0x0010

	// DeviceSegBase is the first virtual segment used for owned devices:
	// owned device j appears at virtual address (DeviceSegBase+j)<<12.
	DeviceSegBase = 8

	// MaxPartitionSegs caps a partition at 8 segments (32K words) so that
	// device segments never collide with memory segments.
	MaxPartitionSegs = 8
)

// DeviceVirtBase returns the virtual base address of owned device j.
func DeviceVirtBase(j int) Word {
	return Word(DeviceSegBase+j) << 12
}

// Prelude is an assembler prelude defining the kernel ABI for regime
// programs; prepend it to program source.
const Prelude = `
	.equ SWAP,   0
	.equ SEND,   1
	.equ RECV,   2
	.equ IRQON,  3
	.equ IRQOFF, 4
	.equ POLL,   5
	.equ HALTME, 6
	.equ WAITIRQ,7
	.equ WHOAMI, 8
	.equ VECBASE, 0x0010
	.equ DEV0, 0x8000
	.equ DEV1, 0x9000
	.equ DEV2, 0xA000
	.equ DEV3, 0xB000
`

func saveBase(i int) Word { return KData + kdSaves + Word(i)*saveStride }

// The exported save-area geometry below exists for tools that reason about
// the kernel's memory layout from outside (package staticflow models the
// context-switch sequence over these physical addresses). The kernel itself
// keeps using the unexported constants.

// SaveBase returns the physical base address of regime i's register save
// area.
func SaveBase(i int) Word { return saveBase(i) }

// Save-area slot offsets and stride, relative to SaveBase(i).
const (
	SaveOffR0      = saveR0      // R0..R5 at SaveOffR0..SaveOffR0+5
	SaveOffSP      = saveSP      // saved stack pointer
	SaveOffPC      = savePC      // saved program counter
	SaveOffPSW     = savePSW     // saved processor status word
	SaveOffPending = savePending // pending-interrupt bitmask
	SaveAreaStride = saveStride
)

// ScratchAddr returns the physical address of the kernel scratch word — the
// word the SharedScratch leak maps into every regime's address space.
func ScratchAddr() Word { return KData + kdScratch }

// SchedCurrentAddr returns the physical address of the kernel word that
// records which regime holds the CPU — the scheduling variable the paper's
// high-level SWAP specification is allowed to touch.
func SchedCurrentAddr() Word { return KData + kdCurrent }

// ChannelAreaBase returns the physical address where channel buffers begin
// for a system of n regimes (header + buffers follow per channel).
func ChannelAreaBase(n int) Word { return KData + kdSaves + Word(n)*saveStride }
