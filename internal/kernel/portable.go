package kernel

import (
	"encoding/json"
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs"
)

// Portable codec for the adapter: the witness subsystem persists a
// counterexample's pre-state and input sequence through these methods and
// re-materializes them in a later process against a freshly built system
// with the same configuration.

// EncodeState implements model.Portable. The encoding is one kernel-death
// flag byte followed by the snapshot's self-describing wire form.
func (a *Adapter) EncodeState(ref model.StateRef) ([]byte, error) {
	st, ok := ref.(*adapterState)
	if !ok {
		return nil, fmt.Errorf("kernel adapter: EncodeState: foreign StateRef %T", ref)
	}
	sb, err := st.snap.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 1+len(sb))
	out = append(out, boolByte(st.dead))
	return append(out, sb...), nil
}

// DecodeState implements model.Portable. The returned StateRef is only
// usable on an adapter whose machine has the same RAM size and device
// complement as the encoder's (Restore re-validates both).
func (a *Adapter) DecodeState(data []byte) (model.StateRef, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("kernel adapter: DecodeState: empty input")
	}
	if data[0] > 1 {
		return nil, fmt.Errorf("kernel adapter: DecodeState: bad death flag %#x", data[0])
	}
	snap, err := machine.DecodeSnapshot(data[1:])
	if err != nil {
		return nil, err
	}
	return &adapterState{snap: snap, dead: data[0] == 1}, nil
}

// EncodeInput implements model.Portable: an InputVec serializes as JSON
// (device name -> stimulus words); the nil input (a pure device tick)
// serializes as no bytes at all.
func (a *Adapter) EncodeInput(i model.Input) ([]byte, error) {
	if i == nil {
		return nil, nil
	}
	iv, ok := i.(InputVec)
	if !ok {
		return nil, fmt.Errorf("kernel adapter: EncodeInput: foreign Input %T", i)
	}
	return json.Marshal(iv)
}

// DecodeInput implements model.Portable.
func (a *Adapter) DecodeInput(data []byte) (model.Input, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var iv InputVec
	if err := json.Unmarshal(data, &iv); err != nil {
		return nil, fmt.Errorf("kernel adapter: DecodeInput: %w", err)
	}
	return iv, nil
}

// SetTracer attaches t to both the kernel (service/fault/switch events) and
// the underlying machine (device and translation events), or detaches both
// when t is nil. Tracing is host-side observation only; it never changes
// what the system computes.
func (a *Adapter) SetTracer(t obs.Tracer) {
	a.K.SetTracer(t)
	a.K.Machine().SetEventTracer(t)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
