package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// TestDirtyColoursConservative pins Adapter.DirtyColours against its
// soundness contract: a CLEAR mask bit must be a proof that the colour's Φ
// digest is unchanged since the checkpoint. Over-marking (set bits for
// untouched colours) is allowed; under-marking is the bug this test hunts.
func TestDirtyColoursConservative(t *testing.T) {
	a := adapterSystem(t)
	rng := rand.New(rand.NewSource(37))
	a.Randomize(rng)
	colours := a.Colours()

	digests := func() []uint64 {
		out := make([]uint64, len(colours))
		for ci, c := range colours {
			out[ci] = model.DigestString(a.Abstract(c))
		}
		return out
	}

	for round := 0; round < 6; round++ {
		base := digests()
		cp := a.Checkpoint()
		if cp == nil {
			t.Fatal("Checkpoint returned nil")
		}
		check := func(step string) {
			t.Helper()
			mask, ok := a.DirtyColours(cp)
			if !ok {
				// Declining is always legal; the checker then assumes
				// everything is dirty.
				return
			}
			now := digests()
			for ci := range colours {
				if now[ci] != base[ci] && mask&(1<<uint(ci)) == 0 {
					t.Fatalf("%s: Φ(%s) changed but dirty bit %d is clear (mask %#x)",
						step, colours[ci], ci, mask)
				}
			}
		}
		for sub := 0; sub < 3; sub++ {
			for i := 0; i < 20; i++ {
				mutateAdapter(a, rng)
				if i%4 == 0 {
					check(fmt.Sprintf("round %d sub %d step %d", round, sub, i))
				}
			}
			check(fmt.Sprintf("round %d sub %d before rollback", round, sub))
			a.Rollback(cp)
			check(fmt.Sprintf("round %d sub %d after rollback", round, sub))
		}
		a.Release(cp)
		for i := 0; i < 6; i++ {
			mutateAdapter(a, rng)
		}
	}
}
