package kernel

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/obs"
)

// RegimeSpec configures one regime: a fixed partition of real memory, a
// program, and the devices the regime owns outright.
type RegimeSpec struct {
	// Name identifies the regime; it doubles as the regime's colour in the
	// formal model.
	Name string
	// Base and Size fix the regime's physical memory partition, allocated
	// permanently at configuration time (the SUE performs no memory
	// management at run time). Base must be >= KernelEnd.
	Base Word
	Size Word
	// Image is the regime's program; its .org is a virtual address inside
	// the partition (virtual address 0 is the partition base).
	Image *asm.Image
	// Devices lists the machine devices this regime owns. Each owned
	// device j is mapped at virtual address DeviceVirtBase(j).
	Devices []machine.Device
}

// ChannelSpec declares one unidirectional inter-regime communication
// channel, the only mechanism by which regimes may interact.
type ChannelSpec struct {
	Name     string
	From, To string // regime names
	Capacity int    // words buffered in the kernel; default 16
}

// Config is the complete static configuration of a SUE-Go system. The SUE
// has no dynamic resource management: everything is fixed here.
type Config struct {
	Regimes  []RegimeSpec
	Channels []ChannelSpec

	// CutChannels enables the paper's channel-cutting transformation: each
	// channel's shared buffer X is aliased into X1 (the writer's end) and
	// X2 (the reader's end), so sends are swallowed and receives find
	// nothing. Proving the cut system isolated proves the uncut system has
	// no channels beyond the configured ones.
	CutChannels bool

	// FixedSlice, when positive, replaces run-until-SWAP scheduling with
	// fixed time slices of that many machine cycles: a regime that yields
	// early is parked and its remaining slice burns in the kernel idle
	// loop, and a regime that never yields is preempted at the boundary.
	// Every rotation then takes the same wall-clock time regardless of
	// regime behaviour, which closes the scheduling/timing channel the
	// paper scopes out (see internal/timingchan) at the cost of idle
	// cycles. This is an extension beyond the SUE, anticipating the fixed
	// time-partitioning of later separation kernels.
	FixedSlice int

	// Leaks injects deliberate separation violations for verifying the
	// verifier. A correct kernel has the zero value.
	Leaks Leaks
}

// FaultInfo records why a regime died.
type FaultInfo struct {
	Reason string
	PC     Word
}

// Kernel is a booted SUE-Go instance bound to one machine.
type Kernel struct {
	m   *machine.Machine
	cfg Config

	devOwner []int // machine device index -> regime index (-1 unowned)
	devLocal []int // machine device index -> owned-device ordinal
	chanOff  []Word
	chanCap  []Word
	kEnd     Word // first word after kernel data + channel area

	dead  bool
	Cause error // why the kernel died, if dead

	faults   []FaultInfo // indexed by regime
	instrs   []uint64    // user instructions executed per regime
	syscalls []uint64    // kernel services invoked per regime
	sends    []uint64    // successful channel sends per regime
	recvs    []uint64    // successful channel receives per regime
	swaps    uint64
	irqs     uint64
	deliver  uint64
	scheds   uint64 // scheduling decisions (scheduleFrom invocations)
	switches uint64 // context switches (CPU handed to a different regime)

	// Observability (see package obs). The tracer and the counters above
	// live OUTSIDE the modelled state S: they are not part of any
	// machine.Snapshot, are never rendered into Φ^c, and are not carried
	// by Adapter.Clone — so attaching a tracer cannot change
	// AbstractDigest or any verification outcome (test-enforced).
	tracer  obs.Tracer
	running int // last resume target: regime index, -1 idle, -2 pre-boot
}

// New validates the configuration and binds a kernel to a machine that
// already has all referenced devices attached. Boot must be called before
// stepping.
func New(m *machine.Machine, cfg Config) (*Kernel, error) {
	k := &Kernel{m: m, cfg: cfg, running: -2}
	if err := k.validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// SetTracer installs (or, with nil, removes) an event tracer receiving the
// kernel's typed trace events: context switches, syscall enter/exit,
// interrupt fielding and delivery, channel traffic, faults and halts. The
// hook sits outside the modelled state — tracing never perturbs regime
// memory, the machine snapshot, or Φ^c — and costs one nil check per hook
// site when disabled.
func (k *Kernel) SetTracer(t obs.Tracer) { k.tracer = t }

// emit stamps the current machine cycle onto e and hands it to the tracer.
// Callers guard with k.tracer != nil.
func (k *Kernel) emit(e obs.Event) {
	e.Cycle = k.m.Cycles()
	k.tracer.Emit(e)
}

func (k *Kernel) validate() error {
	n := len(k.cfg.Regimes)
	if n == 0 {
		return fmt.Errorf("kernel: no regimes configured")
	}
	if n > 8 {
		return fmt.Errorf("kernel: at most 8 regimes supported, got %d", n)
	}
	names := map[string]int{}
	type span struct{ lo, hi Word }
	var spans []span
	for i, r := range k.cfg.Regimes {
		if r.Name == "" {
			return fmt.Errorf("kernel: regime %d has no name", i)
		}
		if _, dup := names[r.Name]; dup {
			return fmt.Errorf("kernel: duplicate regime name %q", r.Name)
		}
		names[r.Name] = i
		if r.Base < KernelEnd {
			return fmt.Errorf("kernel: regime %q partition base %#x inside kernel area", r.Name, r.Base)
		}
		if r.Size < 64 {
			return fmt.Errorf("kernel: regime %q partition too small (%d words)", r.Name, r.Size)
		}
		if int(r.Size) > MaxPartitionSegs*machine.SegmentWords {
			return fmt.Errorf("kernel: regime %q partition too large", r.Name)
		}
		if int(r.Base)+int(r.Size) > k.m.RAMWords() {
			return fmt.Errorf("kernel: regime %q partition exceeds RAM", r.Name)
		}
		if len(r.Devices) > 4 {
			return fmt.Errorf("kernel: regime %q owns more than 4 devices", r.Name)
		}
		if r.Image != nil && int(r.Image.Org)+len(r.Image.Words) > int(r.Size) {
			return fmt.Errorf("kernel: regime %q image does not fit its partition", r.Name)
		}
		spans = append(spans, span{r.Base, r.Base + r.Size})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				return fmt.Errorf("kernel: partitions of %q and %q overlap",
					k.cfg.Regimes[i].Name, k.cfg.Regimes[j].Name)
			}
		}
	}

	// Device ownership: every owned device must be attached, exactly once.
	devs := k.m.Devices()
	k.devOwner = make([]int, len(devs))
	k.devLocal = make([]int, len(devs))
	for i := range k.devOwner {
		k.devOwner[i] = -1
	}
	for ri, r := range k.cfg.Regimes {
		for li, d := range r.Devices {
			found := -1
			for di, md := range devs {
				if md == d {
					found = di
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("kernel: regime %q device %q not attached to machine", r.Name, d.Name())
			}
			if k.devOwner[found] >= 0 {
				return fmt.Errorf("kernel: device %q owned by two regimes", d.Name())
			}
			k.devOwner[found] = ri
			k.devLocal[found] = li
		}
	}

	// Channels reference existing regimes and fit the kernel data area.
	off := KData + kdSaves + Word(n)*saveStride
	for ci := range k.cfg.Channels {
		ch := &k.cfg.Channels[ci]
		if ch.Capacity <= 0 {
			ch.Capacity = 16
		}
		if ch.Capacity > 64 {
			return fmt.Errorf("kernel: channel %q capacity %d too large", ch.Name, ch.Capacity)
		}
		if _, ok := names[ch.From]; !ok {
			return fmt.Errorf("kernel: channel %q sender %q unknown", ch.Name, ch.From)
		}
		if _, ok := names[ch.To]; !ok {
			return fmt.Errorf("kernel: channel %q receiver %q unknown", ch.Name, ch.To)
		}
		if ch.From == ch.To {
			return fmt.Errorf("kernel: channel %q loops back to %q", ch.Name, ch.From)
		}
		k.chanOff = append(k.chanOff, off)
		k.chanCap = append(k.chanCap, Word(ch.Capacity))
		// Header (8 words) + two buffers (send-end and receive-end; the
		// second is used only when channels are cut).
		off += 8 + 2*Word(ch.Capacity)
	}
	if off > KStackTop-16 {
		return fmt.Errorf("kernel: channel buffers overflow the kernel data area")
	}
	k.kEnd = off

	if k.cfg.Leaks.ChannelAlias && len(k.cfg.Channels) < 2 {
		return fmt.Errorf("kernel: ChannelAlias leak needs at least two channels")
	}
	return nil
}

// Machine returns the machine this kernel supervises.
func (k *Kernel) Machine() *machine.Machine { return k.m }

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Boot initializes RAM, loads every regime's image into its partition, and
// resumes the first runnable regime.
func (k *Kernel) Boot() error {
	m := k.m
	m.Reset()
	m.ClearRAM()
	k.dead = false
	k.Cause = nil
	n := len(k.cfg.Regimes)
	k.faults = make([]FaultInfo, n)
	k.instrs = make([]uint64, n)
	k.syscalls = make([]uint64, n)
	k.sends = make([]uint64, n)
	k.recvs = make([]uint64, n)
	k.swaps, k.irqs, k.deliver = 0, 0, 0
	k.scheds, k.switches = 0, 0
	k.running = -2

	// Vectors and stubs: everything lands on a stub the Go kernel
	// intercepts; the stub content is HALT as a belt-and-braces backstop.
	kpsw := machine.WithPriority(0, 7)
	for _, v := range []Word{machine.VecIllegal, machine.VecMMU, machine.VecTRAP} {
		m.SetVector(v, KStubBase+v, kpsw)
		m.WritePhys(KStubBase+v, machine.Enc2(machine.OpHALT, 0, 0))
	}
	for di := range m.Devices() {
		v := machine.VecDevBase + Word(di)*2
		m.SetVector(v, KStubBase+v, kpsw)
		m.WritePhys(KStubBase+v, machine.Enc2(machine.OpHALT, 0, 0))
	}

	// Idle loop: WAIT; BR .-2 — executed in kernel mode at priority 0.
	m.WritePhys(KIdle, machine.Enc2(machine.OpWAIT, 0, 0))
	m.WritePhys(KIdle+1, machine.EncBranch(machine.OpBR, -2))

	m.WritePhys(KData+kdCurrent, 0)
	m.WritePhys(KData+kdNumReg, Word(n))
	m.WritePhys(KData+kdSliceLeft, Word(k.cfg.FixedSlice))
	m.WritePhys(KData+kdParked, 0)

	for i, r := range k.cfg.Regimes {
		if r.Image != nil {
			if err := m.LoadImage(r.Base+r.Image.Org, r.Image.Words); err != nil {
				return fmt.Errorf("kernel: loading %q: %w", r.Name, err)
			}
		}
		sb := saveBase(i)
		for j := Word(0); j < 6; j++ {
			m.WritePhys(sb+saveR0+j, 0)
		}
		m.WritePhys(sb+saveSP, k.stackTop(i))
		entry := Word(0)
		if r.Image != nil {
			entry = r.Image.Org
			if s, ok := r.Image.Symbol("start"); ok {
				entry = s
			}
		}
		m.WritePhys(sb+savePC, entry)
		m.WritePhys(sb+savePSW, machine.PSWUser)
		m.WritePhys(sb+saveState, StateRunnable)
		m.WritePhys(sb+savePending, 0)
		m.WritePhys(sb+saveIPL, 0)
	}

	for ci := range k.cfg.Channels {
		base := k.chanOff[ci]
		for j := Word(0); j < 8+2*k.chanCap[ci]; j++ {
			m.WritePhys(base+j, 0)
		}
		m.WritePhys(base+3, k.chanCap[ci])
	}

	k.resume(k.scheduleFrom(0))
	return nil
}

// stackTop returns the regime's initial virtual stack pointer: the top of
// its partition's virtual image.
func (k *Kernel) stackTop(i int) Word {
	return k.cfg.Regimes[i].Size
}

// --- regime address translation (the same mapping the MMU is programmed
// with, recomputed in Go so kernel services can touch regime memory) ---

// translate maps regime i's virtual address to a physical address under
// the partition (not device) mappings.
func (k *Kernel) translate(i int, vaddr Word) (Word, bool) {
	r := k.cfg.Regimes[i]
	if vaddr >= r.Size {
		return 0, false
	}
	return r.Base + vaddr, true
}

func (k *Kernel) regimeRead(i int, vaddr Word) (Word, bool) {
	pa, ok := k.translate(i, vaddr)
	if !ok {
		return 0, false
	}
	return k.m.ReadPhys(pa), true
}

func (k *Kernel) regimeWrite(i int, vaddr Word, v Word) bool {
	pa, ok := k.translate(i, vaddr)
	if !ok {
		return false
	}
	k.m.WritePhys(pa, v)
	return true
}

// mapRegime programs the MMU for regime i: its partition segments, then
// its owned devices — and nothing else. The few extra mappings the Leaks
// options add are exactly the separation violations E8 plants.
func (k *Kernel) mapRegime(i int) {
	m := k.m
	for s := 0; s < machine.NumSegments; s++ {
		m.SetSeg(s, 0, 0)
	}
	r := k.cfg.Regimes[i]
	remaining := int(r.Size)
	for s := 0; remaining > 0 && s < MaxPartitionSegs; s++ {
		limit := remaining
		if limit > machine.SegmentWords {
			limit = machine.SegmentWords
		}
		m.SetSeg(s, r.Base+Word(s)*machine.SegmentWords,
			machine.MakeSegCtl(limit, machine.AccessRW))
		remaining -= limit
	}
	for j, d := range r.Devices {
		h, _ := m.DeviceHandle(d)
		m.SetSeg(DeviceSegBase+j, h.Base, machine.MakeSegCtl(d.Size(), machine.AccessRW))
	}

	if k.cfg.Leaks.PartitionOverlap && len(k.cfg.Regimes) > 1 {
		next := k.cfg.Regimes[(i+1)%len(k.cfg.Regimes)]
		m.SetSeg(12, next.Base, machine.MakeSegCtl(1, machine.AccessRW))
	}
	if k.cfg.Leaks.SharedScratch {
		m.SetSeg(13, KData+kdScratch, machine.MakeSegCtl(1, machine.AccessRW))
	}
}

// --- scheduling and context switching ---

func (k *Kernel) current() int { return int(k.m.ReadPhys(KData + kdCurrent)) }

func (k *Kernel) regimeState(i int) Word { return k.m.ReadPhys(saveBase(i) + saveState) }

func (k *Kernel) setRegimeState(i int, s Word) { k.m.WritePhys(saveBase(i)+saveState, s) }

// runnable reports whether regime i can be scheduled now, waking WaitIRQ
// regimes whose devices have pended.
func (k *Kernel) runnable(i int) bool {
	switch k.regimeState(i) {
	case StateRunnable:
		return true
	case StateWaitIRQ:
		if k.m.ReadPhys(saveBase(i)+savePending) != 0 {
			k.setRegimeState(i, StateRunnable)
			return true
		}
	}
	return false
}

// scheduleFrom picks the next runnable regime starting the round-robin at
// index start; -1 means idle.
func (k *Kernel) scheduleFrom(start int) int {
	k.scheds++
	n := len(k.cfg.Regimes)
	for d := 0; d < n; d++ {
		i := (start + d) % n
		if k.cfg.Leaks.SchedulerSnoop && n > 0 {
			// Insecure: the rotation depends on a word of regime 0's
			// memory, so regime 0 modulates when everyone else runs.
			if k.m.ReadPhys(k.cfg.Regimes[0].Base)&1 == 1 && d == 0 {
				continue
			}
		}
		if k.runnable(i) {
			return i
		}
	}
	return -1
}

// scheduleNext rotates past the current regime.
func (k *Kernel) scheduleNext() int { return k.scheduleFrom((k.current() + 1) % len(k.cfg.Regimes)) }

// saveCurrent copies the trapped user context (live registers, user SP in
// the alternate bank, PC/PSW on the kernel stack) into the current
// regime's save area.
func (k *Kernel) saveCurrent() {
	m := k.m
	i := k.current()
	sb := saveBase(i)
	for j := 0; j < 6; j++ {
		m.WritePhys(sb+saveR0+Word(j), m.Reg(j))
	}
	m.WritePhys(sb+saveSP, m.AltSP())
	sp := m.Reg(machine.RegSP)
	m.WritePhys(sb+savePC, m.ReadPhys(sp))
	m.WritePhys(sb+savePSW, m.ReadPhys(sp+1))
}

// resume transfers control to regime i (or to the kernel idle loop when i
// is -1): program the MMU, reload the register file from the save area, and
// drop to user mode.
func (k *Kernel) resume(i int) {
	m := k.m
	if i != k.running {
		k.switches++
		if k.tracer != nil {
			prev := k.running
			if prev < -1 {
				prev = -1 // boot looks like a hand-off from idle
			}
			ev := obs.Event{Kind: obs.EvContextSwitch, Regime: i, Prev: prev}
			if i >= 0 {
				ev.Name = k.cfg.Regimes[i].Name
			}
			k.emit(ev)
		}
		k.running = i
	}
	m.ClearWaiting()
	if i < 0 {
		// Idle: kernel mode, priority 0, empty kernel stack, no mappings.
		for s := 0; s < machine.NumSegments; s++ {
			m.SetSeg(s, 0, 0)
		}
		m.SetPSW(machine.WithPriority(0, 0))
		m.SetReg(machine.RegSP, KStackTop)
		m.SetPC(KIdle)
		return
	}

	prev := k.current()
	m.WritePhys(KData+kdCurrent, Word(i))
	k.mapRegime(i)

	if k.cfg.Leaks.OutputCopy && prev != i {
		// Insecure: smear a digest of the outgoing regime's registers
		// into the incoming regime's partition on every switch.
		var pw Word
		for j := Word(0); j < 6; j++ {
			pw ^= m.ReadPhys(saveBase(prev) + saveR0 + j)
		}
		m.WritePhys(k.cfg.Regimes[i].Base, pw)
	}

	sb := saveBase(i)
	for j := 0; j < 6; j++ {
		if j == 5 && k.cfg.Leaks.RegisterLeak {
			// Insecure: R5 is not reloaded, so the previous regime's R5
			// value rides across the swap.
			continue
		}
		m.SetReg(j, m.ReadPhys(sb+saveR0+Word(j)))
	}
	// Enter user mode: the bank switch makes R6 the user SP slot; the
	// kernel stack pointer (now in the alternate bank) is reset to empty.
	m.SetReg(machine.RegSP, KStackTop)
	m.SetPSW(m.ReadPhys(sb+savePSW) | machine.PSWUser)
	m.SetReg(machine.RegSP, m.ReadPhys(sb+saveSP))
	m.SetPC(m.ReadPhys(sb + savePC))
}

// --- the step loop ---

// Dead reports whether the kernel has suffered an unrecoverable fault.
func (k *Kernel) Dead() bool { return k.dead }

func (k *Kernel) die(err error) {
	k.dead = true
	if k.Cause == nil {
		k.Cause = err
	}
}

// enteredVector reports which vector stub the machine has landed on, if any.
func (k *Kernel) enteredVector() (Word, bool) {
	if machine.IsUser(k.m.PSW()) {
		return 0, false
	}
	pc := k.m.PC()
	if pc >= KStubBase && pc < KIdle {
		return pc - KStubBase, true
	}
	return 0, false
}

// deliverablePending returns the lowest pending deliverable virtual
// interrupt for the current regime, or -1.
func (k *Kernel) deliverablePending() int {
	i := k.current()
	if !machine.IsUser(k.m.PSW()) || k.regimeState(i) != StateRunnable {
		return -1
	}
	sb := saveBase(i)
	if k.m.ReadPhys(sb+saveIPL) != 0 {
		return -1
	}
	pend := k.m.ReadPhys(sb + savePending)
	if pend == 0 {
		return -1
	}
	for j := 0; j < 16; j++ {
		if pend&(1<<j) != 0 {
			return j
		}
	}
	return -1
}

// StepCPU performs one CPU operation under kernel supervision: a virtual
// interrupt delivery, or one machine instruction (including any trap that
// instruction raises, serviced atomically). Device ticking is separate
// (machine.TickDevices) so that callers modelling the paper's INPUT phase
// can drive it explicitly.
func (k *Kernel) StepCPU() {
	if k.dead {
		return
	}
	if k.cfg.FixedSlice > 0 {
		left := k.m.ReadPhys(KData + kdSliceLeft)
		if left == 0 {
			// Slice boundary: rotate unconditionally, whatever the
			// current regime was doing.
			if machine.IsUser(k.m.PSW()) {
				k.savePreempted()
			}
			k.m.WritePhys(KData+kdParked, 0)
			k.m.WritePhys(KData+kdSliceLeft, Word(k.cfg.FixedSlice))
			k.resume(k.scheduleNext())
			return
		}
		k.m.WritePhys(KData+kdSliceLeft, left-1)
		if k.m.ReadPhys(KData+kdParked) == 1 {
			// The regime yielded early: burn the slice in the kernel
			// idle loop (device interrupts are still fielded).
			k.stepMachine()
			return
		}
	}
	// Hardware interrupts outrank everything; let the machine dispatch.
	if !k.m.InterruptPending() {
		if j := k.deliverablePending(); j >= 0 {
			k.deliverIRQ(k.current(), j)
			return
		}
	}
	k.stepMachine()
}

// stepMachine advances the machine one CPU cycle and services any kernel
// entry it produces.
func (k *Kernel) stepMachine() {
	k.m.StepCPU()
	if k.m.Halted() {
		k.die(fmt.Errorf("kernel: machine halted unexpectedly (fault: %v)", k.m.Fault))
		return
	}
	if machine.IsUser(k.m.PSW()) {
		k.instrs[k.current()]++
		return
	}
	if vec, ok := k.enteredVector(); ok {
		k.service(vec)
	}
	// Otherwise the machine is in the kernel idle loop; nothing to do.
}

// savePreempted captures the LIVE user context of the current regime (used
// by the fixed-slice preemption path, where there is no trap frame).
func (k *Kernel) savePreempted() {
	m := k.m
	sb := saveBase(k.current())
	for j := 0; j < 6; j++ {
		m.WritePhys(sb+saveR0+Word(j), m.Reg(j))
	}
	m.WritePhys(sb+saveSP, m.Reg(machine.RegSP))
	m.WritePhys(sb+savePC, m.PC())
	m.WritePhys(sb+savePSW, m.PSW())
}

// park records that the current regime gave up the rest of its slice and
// drops into the kernel idle loop until the boundary.
func (k *Kernel) park() {
	k.m.WritePhys(KData+kdParked, 1)
	k.resume(-1)
}

// Step advances the whole system one cycle: devices tick, then one CPU
// operation executes.
func (k *Kernel) Step() {
	if k.dead {
		return
	}
	k.m.TickDevices()
	k.StepCPU()
}

// Run steps n cycles (or until the kernel dies) and reports steps taken.
func (k *Kernel) Run(n int) int {
	i := 0
	for ; i < n && !k.dead; i++ {
		k.Step()
	}
	return i
}

// RunUntilIdle steps until every regime is dead or waiting (the idle loop
// is reached with nothing pending), up to max cycles.
func (k *Kernel) RunUntilIdle(max int) int {
	for i := 0; i < max; i++ {
		if k.dead {
			return i
		}
		if k.AllIdle() {
			return i
		}
		k.Step()
	}
	return max
}

// AllIdle reports whether no regime can make further progress without new
// external input.
func (k *Kernel) AllIdle() bool {
	for i := range k.cfg.Regimes {
		st := k.regimeState(i)
		if st == StateRunnable {
			return false
		}
		if st == StateWaitIRQ && k.m.ReadPhys(saveBase(i)+savePending) != 0 {
			return false
		}
	}
	return !k.m.InterruptPending()
}

// --- kernel entry service ---

func (k *Kernel) service(vec Word) {
	sp := k.m.Reg(machine.RegSP)
	trappedPSW := k.m.ReadPhys(sp + 1)
	fromUser := machine.IsUser(trappedPSW)

	switch {
	case vec == machine.VecTRAP:
		if !fromUser {
			k.die(fmt.Errorf("kernel: TRAP from kernel mode"))
			return
		}
		k.saveCurrent()
		k.syscall()
	case vec == machine.VecIllegal:
		if !fromUser {
			k.die(fmt.Errorf("kernel: illegal instruction in kernel mode"))
			return
		}
		k.saveCurrent()
		k.illegal()
	case vec == machine.VecMMU:
		if !fromUser {
			k.die(fmt.Errorf("kernel: MMU abort in kernel mode"))
			return
		}
		k.saveCurrent()
		i := k.current()
		reason, vaddr := k.m.MMUAbort()
		k.faultRegime(i, fmt.Sprintf("MMU abort %d at vaddr %#x", reason, vaddr))
		if k.cfg.FixedSlice > 0 {
			k.park()
			return
		}
		k.resume(k.scheduleNext())
	case vec >= machine.VecDevBase:
		k.irqs++
		di := int(vec-machine.VecDevBase) / 2
		if fromUser {
			k.saveCurrent()
		}
		k.fieldInterrupt(di)
		switch {
		case fromUser:
			k.resume(k.current())
		case k.cfg.FixedSlice > 0 && k.m.ReadPhys(KData+kdParked) == 1:
			// Interrupt fielded from the parked idle loop: stay parked;
			// the slice boundary will do the scheduling.
			k.resume(-1)
		default:
			k.resume(k.scheduleFrom(k.current()))
		}
	default:
		k.die(fmt.Errorf("kernel: unexpected vector %#x", vec))
	}
}

// fieldInterrupt records a device interrupt as pending for the owning
// regime — the kernel's entire I/O responsibility, per the SUE design.
func (k *Kernel) fieldInterrupt(di int) {
	if di >= len(k.devOwner) {
		return
	}
	owner := k.devOwner[di]
	if owner < 0 {
		return // unowned device: drop
	}
	if k.cfg.Leaks.InterruptMisroute && len(k.cfg.Regimes) > 1 {
		// Insecure: interrupts are credited to the wrong regime.
		owner = (owner + 1) % len(k.cfg.Regimes)
	}
	if k.tracer != nil {
		k.emit(obs.Event{Kind: obs.EvIRQField, Regime: owner,
			Arg: di, Name: k.m.Devices()[di].Name()})
	}
	bit := Word(1) << k.devLocal[di]
	sb := saveBase(owner)
	k.m.WritePhys(sb+savePending, k.m.ReadPhys(sb+savePending)|bit)
}

// deliverIRQ injects owned-device interrupt j into regime i, which must be
// current and in user mode: push PSW and PC on the regime's stack, mask
// further deliveries, and enter the regime's handler.
func (k *Kernel) deliverIRQ(i, j int) {
	m := k.m
	sb := saveBase(i)
	k.deliver++
	if k.tracer != nil {
		k.emit(obs.Event{Kind: obs.EvIRQDeliver, Regime: i,
			Arg: j, Name: k.cfg.Regimes[i].Name})
	}
	m.WritePhys(sb+savePending, m.ReadPhys(sb+savePending)&^(Word(1)<<j))

	handler, ok := k.regimeRead(i, RegimeVecBase+Word(j)*2)
	if !ok || handler == 0 {
		return // no handler installed: drop the interrupt
	}
	// The regime is live in user mode: PC/PSW/SP are the machine's.
	sp := m.Reg(machine.RegSP)
	if !k.pushVirtual(i, &sp, m.PSW()) || !k.pushVirtual(i, &sp, m.PC()) {
		k.saveCurrent()
		k.faultRegime(i, "stack overflow delivering interrupt")
		k.resume(k.scheduleNext())
		return
	}
	m.SetReg(machine.RegSP, sp)
	m.SetPC(handler)
	m.WritePhys(sb+saveIPL, 1)
}

// pushVirtual pushes v onto regime i's stack (vsp is updated).
func (k *Kernel) pushVirtual(i int, vsp *Word, v Word) bool {
	*vsp--
	return k.regimeWrite(i, *vsp, v)
}

// illegal handles an illegal-instruction trap from user mode. A user-mode
// RTI is reinterpreted as "return from virtual interrupt" (the regime
// thinks it is on real hardware); anything else kills the regime.
func (k *Kernel) illegal() {
	m := k.m
	i := k.current()
	sb := saveBase(i)
	pc := m.ReadPhys(sb + savePC)
	instr, ok := k.regimeRead(i, pc-1)
	if ok && machine.DecodeOp(instr) == machine.OpRTI {
		// Virtual RTI: pop PC then PSW from the regime stack.
		sp := m.ReadPhys(sb + saveSP)
		newPC, ok1 := k.regimeRead(i, sp)
		newPSW, ok2 := k.regimeRead(i, sp+1)
		if !ok1 || !ok2 {
			k.faultRegime(i, "bad stack on virtual RTI")
			k.resume(k.scheduleNext())
			return
		}
		m.WritePhys(sb+savePC, newPC)
		m.WritePhys(sb+savePSW, newPSW|machine.PSWUser)
		m.WritePhys(sb+saveSP, sp+2)
		m.WritePhys(sb+saveIPL, 0)
		k.resume(i)
		return
	}
	k.faultRegime(i, fmt.Sprintf("illegal instruction %#x at %#x", instr, pc-1))
	if k.cfg.FixedSlice > 0 {
		k.park()
		return
	}
	k.resume(k.scheduleNext())
}

func (k *Kernel) faultRegime(i int, reason string) {
	k.setRegimeState(i, StateDead)
	k.faults[i] = FaultInfo{Reason: reason, PC: k.m.ReadPhys(saveBase(i) + savePC)}
	if k.tracer != nil {
		k.emit(obs.Event{Kind: obs.EvFault, Regime: i,
			Name: k.cfg.Regimes[i].Name, Detail: reason})
	}
}

// --- system calls ---

func (k *Kernel) syscall() {
	m := k.m
	i := k.current()
	sb := saveBase(i)
	code := m.TrapCode()
	k.syscalls[i]++
	if k.tracer != nil {
		k.emit(obs.Event{Kind: obs.EvSyscallEnter, Regime: i,
			Arg: int(code), Name: TrapName(code)})
		// The exit event reads the save area after the service wrote its
		// results, whichever return path is taken. When the service
		// context-switches, the exit event follows the ctx-switch event
		// (both on the same cycle) — consumers order by emission.
		defer func() {
			k.emit(obs.Event{Kind: obs.EvSyscallExit, Regime: i,
				Arg: int(code), Name: TrapName(code),
				Value: uint64(m.ReadPhys(sb + saveR0))})
		}()
	}
	arg0 := m.ReadPhys(sb + saveR0)
	arg1 := m.ReadPhys(sb + saveR0 + 1)

	setR := func(r int, v Word) { m.WritePhys(sb+saveR0+Word(r), v) }

	switch code {
	case TrapSwap:
		k.swaps++
		if k.cfg.FixedSlice > 0 {
			k.park()
			return
		}
		k.resume(k.scheduleNext())
		return
	case TrapSend:
		setR(0, k.chanSend(i, int(arg0), arg1))
	case TrapRecv:
		okFlag, v := k.chanRecv(i, int(arg0))
		setR(0, okFlag)
		setR(1, v)
	case TrapPoll:
		okFlag, n := k.chanPoll(i, int(arg0))
		setR(0, okFlag)
		setR(1, n)
	case TrapIRQOn:
		m.WritePhys(sb+saveIPL, 0)
	case TrapIRQOff:
		m.WritePhys(sb+saveIPL, 1)
	case TrapHalt:
		k.setRegimeState(i, StateDead)
		if k.tracer != nil {
			k.emit(obs.Event{Kind: obs.EvRegimeHalt, Regime: i,
				Name: k.cfg.Regimes[i].Name})
		}
		if k.cfg.FixedSlice > 0 {
			k.park()
			return
		}
		k.resume(k.scheduleNext())
		return
	case TrapWaitIRQ:
		if m.ReadPhys(sb+savePending) == 0 {
			k.setRegimeState(i, StateWaitIRQ)
		}
		if k.cfg.FixedSlice > 0 {
			k.park()
			return
		}
		k.resume(k.scheduleNext())
		return
	case TrapID:
		setR(0, Word(i))
	default:
		// Unknown service: report failure, keep running.
		setR(0, 0xFFFF)
	}
	k.resume(i)
}

// --- channels ---

// chanIndexFor returns the channel's buffer base, honouring the
// ChannelAlias leak (channels 1.. share channel 0's buffer).
func (k *Kernel) chanBase(ci int) Word {
	if k.cfg.Leaks.ChannelAlias && ci > 0 {
		return k.chanOff[0]
	}
	return k.chanOff[ci]
}

// Channel header layout (relative to chanBase): 0 head, 1 tail, 2 count,
// 3 cap, 4..6 the same for the read-end buffer when channels are cut,
// 7 reserved. Buffer A at +8, buffer B at +8+cap.
func (k *Kernel) chanSend(regime, ci int, v Word) Word {
	if ci < 0 || ci >= len(k.cfg.Channels) {
		return 0
	}
	ch := k.cfg.Channels[ci]
	if k.cfg.Regimes[regime].Name != ch.From {
		return 0
	}
	base := k.chanBase(ci)
	capa := k.m.ReadPhys(base + 3)
	count := k.m.ReadPhys(base + 2)
	if count >= capa {
		return 0
	}
	tail := k.m.ReadPhys(base + 1)
	k.m.WritePhys(base+8+tail, v)
	k.m.WritePhys(base+1, (tail+1)%capa)
	k.m.WritePhys(base+2, count+1)
	k.sends[regime]++
	if k.tracer != nil {
		k.emit(obs.Event{Kind: obs.EvChanSend, Regime: regime, Arg: ci,
			Name: ch.Name, Value: uint64(v), Occ: int(count) + 1})
	}
	return 1
}

func (k *Kernel) chanRecv(regime, ci int) (Word, Word) {
	if ci < 0 || ci >= len(k.cfg.Channels) {
		return 0, 0
	}
	ch := k.cfg.Channels[ci]
	if k.cfg.Regimes[regime].Name != ch.To {
		return 0, 0
	}
	base := k.chanBase(ci)
	if k.cfg.CutChannels {
		// The read end is aliased to buffer B, which nothing ever fills:
		// the channel has been cut.
		bCount := k.m.ReadPhys(base + 6)
		if bCount == 0 {
			return 0, 0
		}
		capa := k.m.ReadPhys(base + 3)
		head := k.m.ReadPhys(base + 4)
		v := k.m.ReadPhys(base + 8 + capa + head)
		k.m.WritePhys(base+4, (head+1)%capa)
		k.m.WritePhys(base+6, bCount-1)
		k.recvs[regime]++
		if k.tracer != nil {
			k.emit(obs.Event{Kind: obs.EvChanRecv, Regime: regime, Arg: ci,
				Name: ch.Name, Value: uint64(v), Occ: int(bCount) - 1})
		}
		return 1, v
	}
	count := k.m.ReadPhys(base + 2)
	if count == 0 {
		return 0, 0
	}
	capa := k.m.ReadPhys(base + 3)
	head := k.m.ReadPhys(base + 0)
	v := k.m.ReadPhys(base + 8 + head)
	k.m.WritePhys(base+0, (head+1)%capa)
	k.m.WritePhys(base+2, count-1)
	k.recvs[regime]++
	if k.tracer != nil {
		k.emit(obs.Event{Kind: obs.EvChanRecv, Regime: regime, Arg: ci,
			Name: ch.Name, Value: uint64(v), Occ: int(count) - 1})
	}
	return 1, v
}

func (k *Kernel) chanPoll(regime, ci int) (Word, Word) {
	if ci < 0 || ci >= len(k.cfg.Channels) {
		return 0, 0
	}
	ch := k.cfg.Channels[ci]
	base := k.chanBase(ci)
	capa := k.m.ReadPhys(base + 3)
	switch k.cfg.Regimes[regime].Name {
	case ch.From:
		return 1, capa - k.m.ReadPhys(base+2)
	case ch.To:
		if k.cfg.CutChannels {
			return 1, k.m.ReadPhys(base + 6)
		}
		return 1, k.m.ReadPhys(base + 2)
	}
	return 0, 0
}

// --- introspection for tests, benchmarks and the model adapter ---

// CurrentRegime returns the index of the regime holding the CPU.
func (k *Kernel) CurrentRegime() int { return k.current() }

// RegimeIndex maps a regime name to its index.
func (k *Kernel) RegimeIndex(name string) int {
	for i, r := range k.cfg.Regimes {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// RegimeStateOf returns the run state of regime i.
func (k *Kernel) RegimeStateOf(i int) Word { return k.regimeState(i) }

// RegimeFault returns the fault record of regime i.
func (k *Kernel) RegimeFault(i int) FaultInfo { return k.faults[i] }

// ReadRegimeMem reads regime i's virtual memory (partition only).
func (k *Kernel) ReadRegimeMem(i int, vaddr Word) (Word, bool) {
	return k.regimeRead(i, vaddr)
}

// WriteRegimeMem writes regime i's virtual memory (partition only).
func (k *Kernel) WriteRegimeMem(i int, vaddr Word, v Word) bool {
	return k.regimeWrite(i, vaddr, v)
}

// RegimeReg returns register r of regime i as the regime would see it:
// live machine state when the regime is current and in user mode, its save
// area otherwise.
func (k *Kernel) RegimeReg(i, r int) Word {
	if i == k.current() && machine.IsUser(k.m.PSW()) {
		switch r {
		case machine.RegSP:
			return k.m.Reg(machine.RegSP)
		case machine.RegPC:
			return k.m.PC()
		default:
			return k.m.Reg(r)
		}
	}
	sb := saveBase(i)
	switch r {
	case machine.RegSP:
		return k.m.ReadPhys(sb + saveSP)
	case machine.RegPC:
		return k.m.ReadPhys(sb + savePC)
	default:
		return k.m.ReadPhys(sb + saveR0 + Word(r))
	}
}

// Stats reports kernel activity counters. Like the tracer, the counters
// live outside the modelled state: they are observational only and are
// neither snapshotted nor rendered into Φ^c.
type Stats struct {
	Swaps          uint64
	Interrupts     uint64
	Deliveries     uint64
	SchedDecisions uint64 // round-robin scans performed
	Switches       uint64 // CPU hand-offs to a different regime (or idle)

	InstrPerRegime   []uint64 // user instructions executed
	SyscallPerRegime []uint64 // kernel services invoked
	SendPerRegime    []uint64 // successful channel sends
	RecvPerRegime    []uint64 // successful channel receives
}

// Stats returns activity counters accumulated since Boot.
func (k *Kernel) Stats() Stats {
	return Stats{
		Swaps:            k.swaps,
		Interrupts:       k.irqs,
		Deliveries:       k.deliver,
		SchedDecisions:   k.scheds,
		Switches:         k.switches,
		InstrPerRegime:   append([]uint64(nil), k.instrs...),
		SyscallPerRegime: append([]uint64(nil), k.syscalls...),
		SendPerRegime:    append([]uint64(nil), k.sends...),
		RecvPerRegime:    append([]uint64(nil), k.recvs...),
	}
}

// FillRegistry publishes the kernel's activity counters into an obs
// metrics registry (Prometheus-style names, regime labels), for export by
// tools like seprun. It adds the current point-in-time values, so use a
// fresh registry per run.
func (k *Kernel) FillRegistry(reg *obs.Registry) {
	st := k.Stats()
	reg.Counter("kernel_swaps_total").Add(st.Swaps)
	reg.Counter("kernel_interrupts_fielded_total").Add(st.Interrupts)
	reg.Counter("kernel_irq_deliveries_total").Add(st.Deliveries)
	reg.Counter("kernel_sched_decisions_total").Add(st.SchedDecisions)
	reg.Counter("kernel_context_switches_total").Add(st.Switches)
	for i, r := range k.cfg.Regimes {
		q := fmt.Sprintf("{regime=%q}", r.Name)
		reg.Counter("kernel_instructions_total" + q).Add(st.InstrPerRegime[i])
		reg.Counter("kernel_syscalls_total" + q).Add(st.SyscallPerRegime[i])
		reg.Counter("kernel_chan_sends_total" + q).Add(st.SendPerRegime[i])
		reg.Counter("kernel_chan_recvs_total" + q).Add(st.RecvPerRegime[i])
	}
	ts := k.m.TranslationStats()
	reg.Counter("sep_tc_hits_total").Add(ts.Hits)
	reg.Counter("sep_tc_misses_total").Add(ts.Misses)
	reg.Counter("sep_tc_invalidations_total").Add(ts.Invalidations)
	reg.Counter("sep_tc_fallbacks_total").Add(ts.Fallbacks)
}
