package distmachine_test

import (
	"testing"

	"repro/internal/distmachine"
)

// The ping node sends 1..5 down its link, prints each reply as a digit.
// Wait loops yield politely with TRAP #SWAP — a genuine yield on the
// kernel deployment, a shim no-op on real hardware.
const pingSrc = `
	.org 0x40
	.equ CON_S,  0x8000
	.equ CON_D,  0x8001
	.equ TX_S,   0x9000
	.equ TX_D,   0x9001
	.equ RX_S,   0xA000
	.equ RX_D,   0xA001
start:
	MOV #1, R2
loop:
wtx:
	MOV @TX_S, R0
	AND #1, R0
	BNE stx
	TRAP #SWAP
	BR wtx
stx:
	MOV R2, @TX_D        ; send the number
wrx:
	MOV @RX_S, R0
	AND #1, R0
	BNE srx
	TRAP #SWAP
	BR wrx
srx:
	MOV @RX_D, R1        ; the reply (number+1)
wcon:
	MOV @CON_S, R0
	AND #1, R0
	BNE pr
	TRAP #SWAP
	BR wcon
pr:
	ADD #'0', R1
	MOV R1, @CON_D       ; print it as a digit
	ADD #1, R2
	CMP #6, R2
	BNE loop
idle:
	TRAP #SWAP
	BR idle
`

// The pong node echoes each received number, incremented, and prints what
// it received.
const pongSrc = `
	.org 0x40
	.equ CON_S,  0x8000
	.equ CON_D,  0x8001
	.equ RX_S,   0x9000
	.equ RX_D,   0x9001
	.equ TX_S,   0xA000
	.equ TX_D,   0xA001
start:
loop:
wrx:
	MOV @RX_S, R0
	AND #1, R0
	BNE srx
	TRAP #SWAP
	BR wrx
srx:
	MOV @RX_D, R2
wcon:
	MOV @CON_S, R0
	AND #1, R0
	BNE pr
	TRAP #SWAP
	BR wcon
pr:
	MOV R2, R1
	ADD #'0', R1
	MOV R1, @CON_D       ; print the received number
	ADD #1, R2           ; reply = received + 1
wtx:
	MOV @TX_S, R0
	AND #1, R0
	BNE stx
	TRAP #SWAP
	BR wtx
stx:
	MOV R2, @TX_D
	BR loop
`

func topology() ([]distmachine.Node, []distmachine.Wire) {
	nodes := []distmachine.Node{
		{Name: "ping", Source: pingSrc},
		{Name: "pong", Source: pongSrc},
	}
	wires := []distmachine.Wire{
		{From: "ping", To: "pong", Capacity: 4},
		{From: "pong", To: "ping", Capacity: 4},
	}
	return nodes, wires
}

func TestPhysicalDeploymentRuns(t *testing.T) {
	nodes, wires := topology()
	d, err := distmachine.BuildPhysical(nodes, wires)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(20000)
	if got := d.ConsoleOutput("ping"); got != "23456" {
		t.Errorf("ping console = %q, want 23456", got)
	}
	if got := d.ConsoleOutput("pong"); got != "12345" {
		t.Errorf("pong console = %q, want 12345", got)
	}
}

func TestSharedDeploymentRuns(t *testing.T) {
	nodes, wires := topology()
	d, err := distmachine.BuildShared(nodes, wires)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(40000)
	if d.Kernel.Dead() {
		t.Fatalf("kernel died: %v", d.Kernel.Cause)
	}
	if got := d.ConsoleOutput("ping"); got != "23456" {
		t.Errorf("ping console = %q, want 23456", got)
	}
	if got := d.ConsoleOutput("pong"); got != "12345" {
		t.Errorf("pong console = %q, want 12345", got)
	}
}

// The machine-level E7: the SAME programs, one build physically
// distributed across two machines, one multiplexed by the separation
// kernel — identical observable console output at every node.
func TestDeploymentsObservationallyEqual(t *testing.T) {
	nodes, wires := topology()
	phys, err := distmachine.BuildPhysical(nodes, wires)
	if err != nil {
		t.Fatal(err)
	}
	phys.Run(20000)

	nodes2, wires2 := topology()
	shared, err := distmachine.BuildShared(nodes2, wires2)
	if err != nil {
		t.Fatal(err)
	}
	shared.Run(40000)

	for _, n := range []string{"ping", "pong"} {
		p, s := phys.ConsoleOutput(n), shared.ConsoleOutput(n)
		if p != s {
			t.Errorf("node %s distinguishable: physical=%q shared=%q", n, p, s)
		}
		if p == "" {
			t.Errorf("node %s produced no output", n)
		}
	}
}

// Under fixed time slices the shared deployment still produces the same
// observations (and closes the scheduling channel as a bonus).
func TestSharedDeploymentWithFixedSliceKernel(t *testing.T) {
	nodes, wires := topology()
	d, err := distmachine.BuildSharedSliced(nodes, wires, 150)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(200000)
	if d.Kernel.Dead() {
		t.Fatalf("kernel died: %v", d.Kernel.Cause)
	}
	if got := d.ConsoleOutput("ping"); got != "23456" {
		t.Errorf("ping console under fixed slices = %q", got)
	}
	if got := d.ConsoleOutput("pong"); got != "12345" {
		t.Errorf("pong console under fixed slices = %q", got)
	}
}
