// Package distmachine realizes the paper's §3 equivalence at machine
// level, in its purest form: the SAME assembled node programs run either
//
//   - physically distributed — one SM11 machine per node, joined by real
//     Link devices over external wires ("independent processors connected
//     by external communications lines"), with no kernel anywhere; or
//   - kernel-hosted — one SM11 machine, one SUE-Go kernel, each node a
//     regime owning the very same Link devices, mapped into its address
//     space like any other memory.
//
// Because the SUE design banishes DMA and treats device registers as
// ordinary protected memory, the kernel needs no channel system calls for
// this: communication is entirely device-register I/O, identical in both
// deployments down to the instruction sequence. The only trusted function
// the kernel performs is separation; the links are the explicit channels.
package distmachine

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// Node declares one node of the distributed design.
type Node struct {
	Name   string
	Source string // SM11 assembly; DEV0 is the node's console printer,
	// DEV1.. are its link endpoints in Wire declaration order.
}

// Wire declares a unidirectional link from one node to another. On the
// sending node the TX endpoint appears as the next device; on the
// receiving node the RX endpoint does.
type Wire struct {
	From, To string
	Capacity int
}

// Deployment is a built system in either form.
type Deployment struct {
	// Machines holds one machine per node (physical) or a single shared
	// machine (kernel-hosted).
	Machines []*machine.Machine
	// Kernel is non-nil for the kernel-hosted form.
	Kernel *kernel.Kernel
	// Consoles maps node name to its console printer.
	Consoles map[string]*machine.Printer

	nodes []Node
}

// assemble prepares a node image (virtual org 0 convention, prelude for
// the DEVn equates only — no TRAPs are needed by pure-device programs,
// but yielding politely still works on the kernel deployment).
func assemble(n Node) (*asm.Image, error) {
	im, err := asm.Assemble(kernel.Prelude + n.Source)
	if err != nil {
		return nil, fmt.Errorf("distmachine: node %q: %w", n.Name, err)
	}
	return im, nil
}

// deviceLists builds, per node, the ordered device list: console printer
// first, then link endpoints in Wire order. The same construction runs for
// both deployments so device ordinals match exactly.
func deviceLists(nodes []Node, wires []Wire) (map[string][]machine.Device, map[string]*machine.Printer) {
	devs := map[string][]machine.Device{}
	consoles := map[string]*machine.Printer{}
	for _, n := range nodes {
		p := machine.NewPrinter("console."+n.Name, 1)
		consoles[n.Name] = p
		devs[n.Name] = []machine.Device{p}
	}
	for i, w := range wires {
		capacity := w.Capacity
		if capacity <= 0 {
			capacity = 16
		}
		tx, rx := machine.NewLink(fmt.Sprintf("wire%d.%s-%s", i, w.From, w.To), capacity)
		devs[w.From] = append(devs[w.From], tx)
		devs[w.To] = append(devs[w.To], rx)
	}
	return devs, consoles
}

// BuildPhysical boots one machine per node, programs at physical 0x400,
// devices attached in the canonical order.
func BuildPhysical(nodes []Node, wires []Wire) (*Deployment, error) {
	devs, consoles := deviceLists(nodes, wires)
	d := &Deployment{Consoles: consoles, nodes: nodes}
	for _, n := range nodes {
		im, err := assemble(n)
		if err != nil {
			return nil, err
		}
		m := machine.New(0x2000)
		for _, dev := range devs[n.Name] {
			m.Attach(dev)
		}
		// With no kernel, run the node program in kernel mode at its
		// natural addresses; device registers are reached through their
		// physical I/O-page addresses, so the program uses a tiny shim:
		// we relocate by mapping... simplest faithful approach: run in
		// USER mode with an identity-style segment map, exactly the
		// environment the kernel would provide.
		if err := m.LoadImage(0x400+im.Org, im.Words); err != nil {
			return nil, err
		}
		// Map segment 0 to the program area (like a 4K-word partition)...
		m.SetSeg(0, 0x400, machine.MakeSegCtl(machine.SegmentWords, machine.AccessRW))
		// ...and each device at the same virtual segments the kernel uses.
		for j, dev := range devs[n.Name] {
			h, _ := m.DeviceHandle(dev)
			m.SetSeg(kernel.DeviceSegBase+j, h.Base,
				machine.MakeSegCtl(dev.Size(), machine.AccessRW))
		}
		// Traps land on HALT stubs: a pure-device node program should
		// never trap; TRAP #SWAP (a politeness no-op here) is emulated by
		// a handler that simply returns.
		m.SetVector(machine.VecTRAP, 0x200, machine.WithPriority(0, 7))
		m.WritePhys(0x200, machine.Enc2(machine.OpRTI, 0, 0))
		m.SetVector(machine.VecIllegal, 0x210, machine.WithPriority(0, 7))
		m.WritePhys(0x210, machine.Enc2(machine.OpHALT, 0, 0))
		m.SetVector(machine.VecMMU, 0x210, machine.WithPriority(0, 7))
		m.SetPSW(machine.PSWUser)
		m.SetAltSP(0x3F0) // kernel stack for the trap shim
		m.SetReg(machine.RegSP, machine.Word(0x1000))
		m.SetPC(im.Org)
		d.Machines = append(d.Machines, m)
	}
	return d, nil
}

// BuildShared boots all nodes as regimes of one SUE-Go kernel on a single
// machine, each owning its console and link endpoints.
func BuildShared(nodes []Node, wires []Wire) (*Deployment, error) {
	return BuildSharedSliced(nodes, wires, 0)
}

// BuildSharedSliced is BuildShared with fixed-slice scheduling (0 keeps
// the SUE's run-until-SWAP discipline).
func BuildSharedSliced(nodes []Node, wires []Wire, slice int) (*Deployment, error) {
	devs, consoles := deviceLists(nodes, wires)
	d := &Deployment{Consoles: consoles, nodes: nodes}
	m := machine.New(0xC000)
	cfg := kernel.Config{FixedSlice: slice}
	base := kernel.KernelEnd
	for _, n := range nodes {
		im, err := assemble(n)
		if err != nil {
			return nil, err
		}
		for _, dev := range devs[n.Name] {
			m.Attach(dev)
		}
		cfg.Regimes = append(cfg.Regimes, kernel.RegimeSpec{
			Name: n.Name, Base: base, Size: 0x1000, Image: im,
			Devices: devs[n.Name],
		})
		base += 0x1000
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := k.Boot(); err != nil {
		return nil, err
	}
	d.Machines = []*machine.Machine{m}
	d.Kernel = k
	return d, nil
}

// Run advances the deployment n steps: physically, all machines step in
// lock-step (truly parallel hardware); kernel-hosted, the one machine
// steps under its kernel.
func (d *Deployment) Run(n int) {
	if d.Kernel != nil {
		d.Kernel.Run(n)
		return
	}
	for i := 0; i < n; i++ {
		for _, m := range d.Machines {
			m.Step()
		}
	}
}

// ConsoleOutput returns a node's console print-out.
func (d *Deployment) ConsoleOutput(node string) string {
	if p, ok := d.Consoles[node]; ok {
		return p.OutputString()
	}
	return ""
}
