package terminal_test

import (
	"testing"

	"repro/internal/distsys"
	"repro/internal/terminal"
)

func TestScriptRunsOneRequestAtATime(t *testing.T) {
	term := terminal.New("t",
		terminal.Login("u", "p"),
		terminal.Create("f"),
	)
	rec := &distsys.Recorder{}

	if !term.Poll(rec) {
		t.Fatal("first poll idle")
	}
	if term.Poll(rec) {
		t.Error("second request issued before first reply")
	}
	if len(rec.Sent) != 1 || rec.Sent[0].Port != "auth" {
		t.Fatalf("sent = %v", rec.Sent)
	}
	term.Handle(rec, "auth_re", distsys.Msg("welcome", "user", "u"))
	if !term.Poll(rec) {
		t.Fatal("script stalled after reply")
	}
	if rec.Sent[1].Port != "fs" || rec.Sent[1].Msg.Kind != "create" {
		t.Errorf("second send = %v", rec.Sent[1])
	}
	term.Handle(rec, "fs_re", distsys.Msg("ok"))
	if !term.Done() {
		t.Error("script not done")
	}
	if term.Poll(rec) {
		t.Error("poll after completion")
	}
}

func TestSpoolIDSubstitution(t *testing.T) {
	term := terminal.New("t",
		terminal.Spool("memo"),
		terminal.PrintLast(),
	)
	rec := &distsys.Recorder{}
	term.Poll(rec)
	term.Handle(rec, "fs_re", distsys.Msg("spooled", "id", "spool/t/3"))
	term.Poll(rec)
	if got := rec.Sent[1].Msg.Arg("id"); got != "spool/t/3" {
		t.Errorf("substituted id = %q", got)
	}
}

func TestTranscriptAndFilters(t *testing.T) {
	term := terminal.New("t", terminal.Read("f"))
	rec := &distsys.Recorder{}
	term.Poll(rec)
	term.Handle(rec, "fs_re", distsys.Msg("err", "why", "no such file"))
	if len(term.Transcript) != 1 {
		t.Fatalf("transcript = %v", term.Transcript)
	}
	if errs := term.Errors(); len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
	if oks := term.Replies("ok"); len(oks) != 0 {
		t.Errorf("ok replies = %v", oks)
	}
}

func TestNonReplyPortsIgnored(t *testing.T) {
	term := terminal.New("t", terminal.Read("f"))
	rec := &distsys.Recorder{}
	term.Poll(rec)
	term.Handle(rec, "somewhere", distsys.Msg("noise"))
	if len(term.Transcript) != 0 {
		t.Error("noise recorded")
	}
	if term.Done() {
		t.Error("noise unblocked the script")
	}
}
