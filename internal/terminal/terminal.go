// Package terminal implements the private single-user machine of the
// paper's idealized system: "each user is given his own private,
// physically isolated, single-user machine and a dedicated communication
// line to a common, shared file-server."
//
// A Terminal runs a script of user actions, one outstanding request at a
// time, and records the replies. Because a terminal is private to its
// user, it is *not* a trusted component: the security of the overall
// system must never depend on what a terminal does.
package terminal

import (
	"strings"

	"repro/internal/distsys"
)

// Action is one scripted user step. Target selects the service wire
// ("auth", "fs" or "ps"); the message is sent verbatim except that an
// "id" argument of "$last" is replaced by the most recent spool id the
// terminal was granted.
type Action struct {
	Target string
	Msg    distsys.Message
}

// Convenience constructors for the common script steps.

// Login authenticates as user/password.
func Login(user, pass string) Action {
	return Action{Target: "auth", Msg: distsys.Msg("login", "user", user, "pass", pass)}
}

// Create makes a file at the user's current level.
func Create(name string) Action {
	return Action{Target: "fs", Msg: distsys.Msg("create", "name", name)}
}

// Write stores data in a file.
func Write(name, data string) Action {
	return Action{Target: "fs", Msg: distsys.Msg("write", "name", name).WithBody([]byte(data))}
}

// Read fetches a file.
func Read(name string) Action {
	return Action{Target: "fs", Msg: distsys.Msg("read", "name", name)}
}

// Delete removes a file.
func Delete(name string) Action {
	return Action{Target: "fs", Msg: distsys.Msg("delete", "name", name)}
}

// List asks for the visible directory.
func List() Action {
	return Action{Target: "fs", Msg: distsys.Msg("list")}
}

// SetLevel changes the user's working level (compact label encoding).
func SetLevel(compact string) Action {
	return Action{Target: "fs", Msg: distsys.Msg("setlevel", "level", compact)}
}

// Spool copies a file into the spool area.
func Spool(name string) Action {
	return Action{Target: "fs", Msg: distsys.Msg("spool", "name", name)}
}

// PrintLast submits the most recently spooled file to the printer-server.
func PrintLast() Action {
	return Action{Target: "ps", Msg: distsys.Msg("print", "id", "$last")}
}

// Terminal is the scripted user-machine component.
//
// Ports: auth/fs/ps (out) and auth_re/fs_re/ps_re (in).
type Terminal struct {
	name    string
	script  []Action
	pos     int
	waiting bool

	lastSpool  string
	Transcript []string
}

// New creates a terminal that will run the script.
func New(name string, script ...Action) *Terminal {
	return &Terminal{name: name, script: script}
}

// Name implements distsys.Component.
func (t *Terminal) Name() string { return t.name }

// Done reports whether the script has fully executed.
func (t *Terminal) Done() bool { return t.pos >= len(t.script) && !t.waiting }

// Poll implements distsys.Component: issue the next scripted request.
func (t *Terminal) Poll(ctx distsys.Context) bool {
	if t.waiting || t.pos >= len(t.script) {
		return false
	}
	a := t.script[t.pos]
	t.pos++
	m := a.Msg.Clone()
	if m.Arg("id") == "$last" {
		m.Args["id"] = t.lastSpool
	}
	ctx.Send(a.Target, m)
	t.waiting = true
	return true
}

// Handle implements distsys.Component: record the reply and unblock.
func (t *Terminal) Handle(ctx distsys.Context, port string, m distsys.Message) {
	if !strings.HasSuffix(port, "_re") {
		return
	}
	if m.Kind == "spooled" {
		t.lastSpool = m.Arg("id")
	}
	t.Transcript = append(t.Transcript, m.Canonical())
	t.waiting = false
}

// Replies returns the transcript entries whose kind matches.
func (t *Terminal) Replies(kind string) []string {
	var out []string
	for _, line := range t.Transcript {
		if strings.HasPrefix(line, kind+" ") || line == kind {
			out = append(out, line)
		}
	}
	return out
}

// Errors returns the err replies received.
func (t *Terminal) Errors() []string { return t.Replies("err") }
