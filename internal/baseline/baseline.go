// Package baseline implements the conventional kernelized system the paper
// argues against: a central security kernel that enforces a single
// multilevel policy over every process in the system — and therefore needs
// "trusted processes" exempted from the *-property to get real work
// (spooling, in the canonical example) done at all.
//
// Experiment E5 runs the same print-and-clean-up workload here and on the
// distributed design (package workstation) and compares the trusted
// computing bases: the baseline's TCB must grow by one policy-exempt
// process, while the distributed design needs none.
package baseline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mls"
)

// Syscalls is the kernel interface offered to processes. Every call is
// checked by the central reference monitor against the calling process's
// label.
type Syscalls interface {
	Create(name string, label mls.Label) error
	Read(name string) ([]byte, error)
	Write(name string, data []byte) error
	Delete(name string) error
	List() []string
}

// Process is one subject scheduled by the kernel. Step returns false when
// the process has nothing further to do.
type Process interface {
	Name() string
	Step(sys Syscalls) bool
}

// file is a kernel object.
type file struct {
	name  string
	label mls.Label
	data  []byte
}

// System is the kernelized baseline: kernel + central monitor + processes.
type System struct {
	mon   *mls.Monitor
	files map[string]*file
	procs []Process
	// trusted marks processes exempted from the *-property: the TCB
	// extension the paper's section 1 is about.
	trusted map[string]bool
}

// New creates an empty system.
func New() *System {
	return &System{
		mon:     mls.NewMonitor(),
		files:   map[string]*file{},
		trusted: map[string]bool{},
	}
}

// AddProcess registers a process at a label; trusted grants the
// *-property exemption.
func (s *System) AddProcess(p Process, label mls.Label, trusted bool) {
	s.procs = append(s.procs, p)
	s.mon.AddSubject(p.Name(), label, trusted)
	s.trusted[p.Name()] = trusted
}

// Monitor exposes the central reference monitor.
func (s *System) Monitor() *mls.Monitor { return s.mon }

// procSys binds Syscalls to one calling process.
type procSys struct {
	s    *System
	proc string
}

func (ps *procSys) Create(name string, label mls.Label) error {
	if _, exists := ps.s.files[name]; exists {
		return fmt.Errorf("baseline: %q exists", name)
	}
	subj, _ := ps.s.mon.Subject(ps.proc)
	// Creation writes the new object: it must not be below the creator.
	if subj != nil && !label.Dominates(subj.Current) && !subj.Trusted {
		return fmt.Errorf("baseline: create below current level")
	}
	ps.s.files[name] = &file{name: name, label: label}
	ps.s.mon.AddObject(name, label)
	return nil
}

func (ps *procSys) Read(name string) ([]byte, error) {
	f, ok := ps.s.files[name]
	if !ok {
		return nil, fmt.Errorf("baseline: no file %q", name)
	}
	if d := ps.s.mon.Check(ps.proc, name, mls.Observe); !d.Granted {
		return nil, fmt.Errorf("baseline: %s", d.Rule)
	}
	return append([]byte(nil), f.data...), nil
}

func (ps *procSys) Write(name string, data []byte) error {
	f, ok := ps.s.files[name]
	if !ok {
		return fmt.Errorf("baseline: no file %q", name)
	}
	if d := ps.s.mon.Check(ps.proc, name, mls.Alter); !d.Granted {
		return fmt.Errorf("baseline: %s", d.Rule)
	}
	f.data = append([]byte(nil), data...)
	return nil
}

func (ps *procSys) Delete(name string) error {
	if _, ok := ps.s.files[name]; !ok {
		return fmt.Errorf("baseline: no file %q", name)
	}
	if d := ps.s.mon.Check(ps.proc, name, mls.Alter); !d.Granted {
		return fmt.Errorf("baseline: %s", d.Rule)
	}
	delete(ps.s.files, name)
	ps.s.mon.RemoveObject(name)
	return nil
}

func (ps *procSys) List() []string {
	subj, _ := ps.s.mon.Subject(ps.proc)
	var names []string
	for n, f := range ps.s.files {
		if subj != nil && subj.Current.Dominates(f.label) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Run schedules processes round-robin until all are idle or max steps.
func (s *System) Run(max int) int {
	steps := 0
	for steps < max {
		progress := false
		for _, p := range s.procs {
			if p.Step(&procSys{s: s, proc: p.Name()}) {
				progress = true
			}
			steps++
			if steps >= max {
				return steps
			}
		}
		if !progress {
			return steps
		}
	}
	return steps
}

// FileCount reports files present.
func (s *System) FileCount() int { return len(s.files) }

// FilesMatching counts files whose name has the prefix.
func (s *System) FilesMatching(prefix string) int {
	n := 0
	for name := range s.files {
		if strings.HasPrefix(name, prefix) {
			n++
		}
	}
	return n
}

// FileLabel returns a file's label.
func (s *System) FileLabel(name string) (mls.Label, bool) {
	f, ok := s.files[name]
	if !ok {
		return mls.Label{}, false
	}
	return f.label, true
}

// TCBReport summarizes what must be verified for the system to be secure.
type TCBReport struct {
	KernelMonitor    bool
	TrustedProcesses []string
	TrustedUses      int
	Denials          int
}

// TCB computes the report.
func (s *System) TCB() TCBReport {
	r := TCBReport{KernelMonitor: true}
	var names []string
	for n, tr := range s.trusted {
		if tr {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	r.TrustedProcesses = names
	r.TrustedUses = s.mon.TrustedUses()
	r.Denials = s.mon.Denials()
	return r
}
