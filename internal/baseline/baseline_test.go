package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/mls"
)

func TestUntrustedSpoolerCannotCleanUp(t *testing.T) {
	sys, sp := baseline.SpoolerScenario(false)
	sys.Run(1000)

	// Everything printed (read-down at TOP SECRET is fine)...
	if got := len(sp.Printed()); got != 3 {
		t.Errorf("printed %d jobs, want 3", got)
	}
	// ...but the *-property blocked every delete below TOP SECRET.
	if sp.DeleteFailures != 3 {
		t.Errorf("delete failures = %d, want 3", sp.DeleteFailures)
	}
	if got := sys.FilesMatching("spool/"); got != 3 {
		t.Errorf("leftover spool files = %d, want 3 (the paper's accumulation problem)", got)
	}
	tcb := sys.TCB()
	if len(tcb.TrustedProcesses) != 0 {
		t.Errorf("untrusted scenario has trusted processes: %v", tcb.TrustedProcesses)
	}
	if tcb.Denials == 0 {
		t.Error("expected *-property denials in the audit")
	}
}

func TestTrustedSpoolerCleansUpButJoinsTCB(t *testing.T) {
	sys, sp := baseline.SpoolerScenario(true)
	sys.Run(1000)

	if got := len(sp.Printed()); got != 3 {
		t.Errorf("printed %d jobs, want 3", got)
	}
	if sp.DeleteFailures != 0 {
		t.Errorf("delete failures = %d, want 0", sp.DeleteFailures)
	}
	if got := sys.FilesMatching("spool/"); got != 0 {
		t.Errorf("leftover spool files = %d, want 0", got)
	}
	tcb := sys.TCB()
	if len(tcb.TrustedProcesses) != 1 || tcb.TrustedProcesses[0] != "spooler" {
		t.Errorf("TCB trusted processes = %v, want [spooler]", tcb.TrustedProcesses)
	}
	if tcb.TrustedUses != 3 {
		t.Errorf("trusted escape-hatch uses = %d, want 3 (one per cleanup)", tcb.TrustedUses)
	}
}

func TestKernelEnforcesOnOrdinaryProcesses(t *testing.T) {
	sys := baseline.New()
	low := baseline.NewUser("low", mls.L(mls.Unclassified), "x")
	sys.AddProcess(low, mls.L(mls.Unclassified), false)
	sys.Run(100)

	// A LOW subject can't read the SECRET file the kernel tracks.
	sysCalls := struct{}{}
	_ = sysCalls
	mon := sys.Monitor()
	mon.AddObject("secret-doc", mls.L(mls.Secret))
	if d := mon.Check("low", "secret-doc", mls.Observe); d.Granted {
		t.Error("read-up granted by central kernel")
	}
}

func TestCreateBelowLevelDenied(t *testing.T) {
	sys := baseline.New()
	p := &createLow{}
	sys.AddProcess(p, mls.L(mls.Secret), false)
	sys.Run(10)
	if p.err == nil {
		t.Error("creating a file below the subject's level must fail (it is a write-down)")
	}
}

type createLow struct {
	err  error
	done bool
}

func (c *createLow) Name() string { return "creator" }

func (c *createLow) Step(sys baseline.Syscalls) bool {
	if c.done {
		return false
	}
	c.done = true
	c.err = sys.Create("low-file", mls.L(mls.Unclassified))
	if c.err == nil {
		c.err = nil
	}
	return true
}

func TestListFiltersByLevel(t *testing.T) {
	sys, _ := baseline.SpoolerScenario(false)
	sys.Run(1000)
	// Files exist at UNCLASSIFIED and SECRET; verify label assignment.
	if lbl, ok := sys.FileLabel("spool/lois/0"); !ok || lbl.Level != mls.Unclassified {
		t.Errorf("lois's spool label = %v ok=%v", lbl, ok)
	}
	if lbl, ok := sys.FileLabel("spool/hank/0"); !ok || lbl.Level != mls.Secret {
		t.Errorf("hank's spool label = %v ok=%v", lbl, ok)
	}
}
