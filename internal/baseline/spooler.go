package baseline

import (
	"fmt"
	"strings"

	"repro/internal/mls"
)

// UserProc is a scripted user process: it creates spool files at its own
// level, then idles.
type UserProc struct {
	name  string
	level mls.Label
	jobs  []string
	done  int
}

// NewUser creates a user process that will spool the given job contents.
func NewUser(name string, level mls.Label, jobs ...string) *UserProc {
	return &UserProc{name: name, level: level, jobs: jobs}
}

// Name implements Process.
func (u *UserProc) Name() string { return u.name }

// Step implements Process.
func (u *UserProc) Step(sys Syscalls) bool {
	if u.done >= len(u.jobs) {
		return false
	}
	name := fmt.Sprintf("spool/%s/%d", u.name, u.done)
	if err := sys.Create(name, u.level); err == nil {
		sys.Write(name, []byte(u.jobs[u.done]))
	}
	u.done++
	return true
}

// Spooler is the classic line-printer spooler of the paper's section 1:
// it runs at the highest classification so it can read every user's spool
// files, prints them, and then tries to delete them — a write-down that
// the *-property forbids unless the spooler is made a trusted process.
type Spooler struct {
	name    string
	printed []string
	// DeleteFailures counts spool files it could not clean up.
	DeleteFailures int
	seen           map[string]bool
}

// NewSpooler creates the spooler process.
func NewSpooler(name string) *Spooler {
	return &Spooler{name: name, seen: map[string]bool{}}
}

// Name implements Process.
func (sp *Spooler) Name() string { return sp.name }

// Step implements Process: print one unseen spool file per step.
func (sp *Spooler) Step(sys Syscalls) bool {
	for _, name := range sys.List() {
		if !strings.HasPrefix(name, "spool/") || sp.seen[name] {
			continue
		}
		sp.seen[name] = true
		data, err := sys.Read(name)
		if err != nil {
			continue
		}
		sp.printed = append(sp.printed, string(data))
		if err := sys.Delete(name); err != nil {
			sp.DeleteFailures++
		}
		return true
	}
	return false
}

// Printed returns the jobs printed so far.
func (sp *Spooler) Printed() []string { return append([]string(nil), sp.printed...) }

// SpoolerScenario wires the canonical workload: users at several levels
// spool jobs; the spooler at TOP SECRET prints and tries to clean up.
// When trusted is false the *-property blocks the cleanup and used spool
// files accumulate — the paper's exact motivating example.
func SpoolerScenario(trusted bool) (*System, *Spooler) {
	s := New()
	s.AddProcess(NewUser("lois", mls.L(mls.Unclassified),
		"job lois 1", "job lois 2"), mls.L(mls.Unclassified), false)
	s.AddProcess(NewUser("hank", mls.L(mls.Secret),
		"job hank 1"), mls.L(mls.Secret), false)
	sp := NewSpooler("spooler")
	s.AddProcess(sp, mls.L(mls.TopSecret), trusted)
	return s, sp
}
