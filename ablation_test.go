package repro

// Ablation benchmarks: each sweeps one design parameter called out in
// DESIGN.md and reports how the corresponding observable moves. They
// complement the E1..E9 experiment benches in bench_test.go.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/distsys"
	"repro/internal/kernel"
	"repro/internal/separability"
	"repro/internal/snfe"
	"repro/internal/timingchan"
	"repro/internal/verifysys"
	"repro/internal/workstation"
)

// BenchmarkAblationDetectionBudget sweeps the randomized checker's
// exploration budget and reports how many of the seven planted leaks are
// caught at each level — the cost/coverage trade of sampling-based
// separability checking.
func BenchmarkAblationDetectionBudget(b *testing.B) {
	budgets := []struct {
		trials, steps int
	}{
		{1, 20}, {2, 40}, {5, 60}, {10, 100},
	}
	for _, budget := range budgets {
		b.Run(fmt.Sprintf("trials=%d_steps=%d", budget.trials, budget.steps), func(b *testing.B) {
			var caught int
			for i := 0; i < b.N; i++ {
				caught = 0
				for _, l := range kernel.AllLeaks() {
					sys, err := verifysys.Build(verifysys.ProbeFor(l), l, true)
					if err != nil {
						b.Fatal(err)
					}
					res := separability.CheckRandomized(sys, separability.Options{
						Trials: budget.trials, StepsPerTrial: budget.steps,
						Seed: 99, CheckScheduling: l.SchedulerSnoop,
					})
					if !res.Passed() {
						caught++
					}
				}
			}
			b.ReportMetric(float64(caught), "leaks-caught-of-7")
		})
	}
}

// BenchmarkAblationKernelQuantum sweeps the kernel-hosted fabric's
// scheduling quantum and verifies deployment indistinguishability (E7)
// survives every granularity — the separation property must not depend on
// how finely the kernel slices time.
func BenchmarkAblationKernelQuantum(b *testing.B) {
	for _, quantum := range []int{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("quantum=%d", quantum), func(b *testing.B) {
			var mismatches int
			for i := 0; i < b.N; i++ {
				phys, err := workstation.Build(distsys.Physical, e5Users())
				if err != nil {
					b.Fatal(err)
				}
				phys.Run(3000)
				hosted, err := workstation.Build(distsys.KernelHosted, e5Users())
				if err != nil {
					b.Fatal(err)
				}
				hosted.Fabric.Quantum = quantum
				hosted.Run(6000)
				mismatches = 0
				for _, comp := range []string{"lois", "hank", "auth", "fs", "ps"} {
					if ok, _ := distsys.PerPortTracesEqual(phys.Fabric, hosted.Fabric, comp); !ok {
						mismatches++
					}
				}
			}
			b.ReportMetric(float64(mismatches), "distinguishable-components")
		})
	}
}

// BenchmarkAblationChannelCapacity sweeps the kernel channel capacity and
// reports sustained words-per-cycle between two regimes — the cost of the
// SUE's fixed, kernel-buffered channel design.
func BenchmarkAblationChannelCapacity(b *testing.B) {
	const producer = `
	.org 0x40
start:
	MOV #0, R2
loop:
	MOV #0, R0
	MOV R2, R1
	TRAP #SEND
	ADD R0, R2        ; count successes
	TRAP #SWAP
	BR loop
`
	const consumer = `
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV #0, R0
	TRAP #RECV
	ADD R0, R4        ; count successes
	CMP #1, R0
	BEQ loop          ; drain greedily
	TRAP #SWAP
	BR loop
`
	for _, capacity := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("cap=%d", capacity), func(b *testing.B) {
			sys := core.NewBuilder().
				RegimeSized("p", producer, 0x200).
				RegimeSized("c", consumer, 0x200).
				Channel("p", "c", capacity).
				MustBuild()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Kernel.Step()
			}
			b.StopTimer()
			got := sys.Kernel.RegimeReg(sys.Kernel.RegimeIndex("c"), 4)
			if b.N > 0 {
				b.ReportMetric(float64(got)/float64(b.N), "words/cycle")
			}
		})
	}
}

// BenchmarkAblationCensorRate sweeps the censor's rate limit and reports
// the residual bandwidth of the one channel that beats the format check
// (length parity) under a format-only censor — quantifying how much rate
// limiting buys when canonicalization is unavailable.
func BenchmarkAblationCensorRate(b *testing.B) {
	for _, rate := range []int{0, 4, 16, 64} {
		b.Run(fmt.Sprintf("rate=%d", rate), func(b *testing.B) {
			var rateBits float64
			for i := 0; i < b.N; i++ {
				res, err := snfe.Run(snfe.Config{
					Mode: snfe.ExfilLenMod, Censor: snfe.CensorFormat,
					RateEvery: rate, Packets: 48, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Delivered {
					b.Fatal("user data lost")
				}
				rateBits = res.Covert.BitsPerRound
			}
			b.ReportMetric(rateBits, "bits/round")
		})
	}
}

// BenchmarkAblationTimingChannel measures the scheduling/timing covert
// channel the paper's model deliberately permits ("denial of service is
// not a security problem", §3): bits moved between regimes with no shared
// memory, no channels and no kernel bug — by modulating CPU hold time.
// The same system passes Proof of Separability (asserted in
// internal/timingchan's tests).
func BenchmarkAblationTimingChannel(b *testing.B) {
	for _, busy := range []int{20, 60, 200} {
		b.Run(fmt.Sprintf("hold=%d", busy), func(b *testing.B) {
			var cap1, rate float64
			for i := 0; i < b.N; i++ {
				res, _, err := timingchan.Run(64, 11, busy, busy+24)
				if err != nil {
					b.Fatal(err)
				}
				cap1 = res.Covert.CapacityPerSymbol
				rate = res.Covert.BitsPerRound
			}
			b.ReportMetric(cap1, "cap-b/sym")
			b.ReportMetric(rate, "bits/cycle")
		})
	}
}
