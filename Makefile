GO ?= go

.PHONY: verify race test bench

# Tier-1 gate: vet, build, full test suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Race-detector pass over the concurrent verification engine and the
# kernel adapter it replicates.
race:
	$(GO) test -race ./internal/separability/... ./internal/kernel/...

test:
	$(GO) test ./...

# Experiment benchmarks (E1..E10); see EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchmem -run '^$$'
