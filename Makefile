GO ?= go

.PHONY: verify race test bench bench-smoke lint fuzz-smoke trace-smoke witness-smoke flow-smoke fleet-smoke watch-smoke

# Tier-1 gate: vet, build, full test suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Repository-invariant linter (see internal/lint): obs stays dependency
# free, raw machine state stays behind the kernel adapter, tracing hooks
# never mutate.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/seplint .

# Short fuzzing pass over the assembler and the static-analyzer CFG
# builder; the committed corpus seeds both.
fuzz-smoke:
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzAssemble -fuzztime 10s
	$(GO) test ./internal/staticflow -run '^$$' -fuzz FuzzBuildCFG -fuzztime 10s
	$(GO) test ./internal/staticflow -run '^$$' -fuzz FuzzVSAResolve -fuzztime 10s
	$(GO) test ./internal/machine -run '^$$' -fuzz FuzzTranslationInvalidation -fuzztime 10s
	$(GO) test ./internal/obs -run '^$$' -fuzz FuzzReadJSONL -fuzztime 10s
	$(GO) test ./internal/witness -run '^$$' -fuzz FuzzWitnessRead -fuzztime 10s
	$(GO) test ./internal/separability -run '^$$' -fuzz FuzzCheckpointResume -fuzztime 10s

# Trace-analysis smoke (E14): replay the committed golden traces through
# septrace. The honest Physical/KernelHosted pair must be indistinguishable,
# the planted-leak trace must diverge, the open timingchan trace must
# measure a perfect scheduling channel and the fixed-slice trace a dead
# one. A live seprun pipe exercises `-trace -`. Reports land in
# trace-smoke/ for CI artifact upload.
TRACEDATA := cmd/septrace/testdata
trace-smoke:
	mkdir -p trace-smoke
	$(GO) run ./cmd/septrace diff $(TRACEDATA)/fabric_physical.jsonl $(TRACEDATA)/fabric_kernelhosted.jsonl > trace-smoke/diff-honest.txt
	grep -q 'verdict: indistinguishable' trace-smoke/diff-honest.txt
	! $(GO) run ./cmd/septrace diff $(TRACEDATA)/fabric_physical.jsonl $(TRACEDATA)/fabric_leaky.jsonl > trace-smoke/diff-leaky.txt
	grep -q 'verdict: DISTINGUISHABLE' trace-smoke/diff-leaky.txt
	$(GO) run ./cmd/septrace covert $(TRACEDATA)/timingchan_open.jsonl > trace-smoke/covert-open.txt
	grep -q 'err=0.00' trace-smoke/covert-open.txt
	$(GO) run ./cmd/septrace covert $(TRACEDATA)/timingchan_fixed.jsonl > trace-smoke/covert-fixed.txt
	grep -q 'rate=0.0000' trace-smoke/covert-fixed.txt
	$(GO) run ./cmd/seprun -steps 5000 -trace - 2> trace-smoke/seprun-report.txt | $(GO) run ./cmd/septrace project - > trace-smoke/project-live.txt
	grep -q 'regime 0:' trace-smoke/project-live.txt
	@echo "trace-smoke: all verdicts as expected"

# Witness smoke (E16): verify two leaky kernels with -witness-dir so every
# violation is captured, shrunk and stored, then replay each store from its
# artifacts alone with -require-shrink — replay must reproduce the recorded
# condition/colour/digest pair on a freshly built system, and the shrinker
# must have dropped ops overall. A second replay with -notranslate pins the
# witnesses to architected state (independent of the translation cache).
# Artifacts land in witness-smoke/ for CI upload. sepverify exits 0 here:
# with -leak, catching the leak is the expected outcome.
witness-smoke:
	rm -rf witness-smoke
	$(GO) run ./cmd/sepverify -leak RegisterLeak -seed 99 -witness-dir witness-smoke > witness-smoke-verify.txt 2>&1
	$(GO) run ./cmd/sepverify -leak SharedScratch -seed 99 -witness-dir witness-smoke >> witness-smoke-verify.txt 2>&1
	mv witness-smoke-verify.txt witness-smoke/verify.txt
	$(GO) run ./cmd/sepwitness -dir witness-smoke/RegisterLeak -require-shrink replay
	$(GO) run ./cmd/sepwitness -dir witness-smoke/SharedScratch -require-shrink replay
	$(GO) run ./cmd/sepwitness -dir witness-smoke/RegisterLeak -notranslate replay
	$(GO) run ./cmd/sepwitness -dir witness-smoke/SharedScratch -notranslate replay
	@echo "witness-smoke: all witnesses replayed from artifacts"

# Flow-triage smoke (E17): capture a witness store from the RegisterLeak
# build, then run the static analyzer's triage over the honest kernel's
# residual SWAP flows against it. Exactly one flow — the R5 restore the
# planted leak realizes — must come back CONFIRMED; the passing dynamic
# check dismisses the other six as SPURIOUS and nothing may stay
# UNDECIDED. Artifacts land in flow-smoke/ for CI upload. sepverify exits
# 0 here: with -leak, catching the leak is the expected outcome.
flow-smoke:
	rm -rf flow-smoke
	$(GO) run ./cmd/sepverify -leak RegisterLeak -seed 99 -witness-dir flow-smoke > flow-smoke-verify.txt 2>&1
	mv flow-smoke-verify.txt flow-smoke/verify.txt
	$(GO) run ./cmd/sepflow -swap -dynamic -triage -witness-dir flow-smoke/RegisterLeak > flow-smoke/triage.txt
	grep -q '1 CONFIRMED, 6 SPURIOUS, 0 UNDECIDED (100% classified)' flow-smoke/triage.txt
	grep 'witness ' flow-smoke/triage.txt | grep CONFIRMED | grep -q 'r5'
	$(GO) run ./cmd/sepflow -swap -dynamic -triage > flow-smoke/triage-clean.txt
	grep -q '0 CONFIRMED, 7 SPURIOUS, 0 UNDECIDED (100% classified)' flow-smoke/triage-clean.txt
	@echo "flow-smoke: R5 restore confirmed by witness, rest spurious"

# Fleet smoke (E18): build the worker and coordinator binaries, take a
# direct exhaustive verdict on a planted-leak MiniSUE, then run a 2-shard
# sepfleet over the same target with per-chunk checkpoints and throttling,
# SIGKILL shard 0's worker once its checkpoint shows 3 folded chunks, and
# assert the coordinator restarted it, the replacement RESUMED from the
# checkpoint rather than starting over, and the merged fleet verdict is
# byte-identical to the direct run. Artifacts land in fleet-smoke/ for CI
# upload.
fleet-smoke:
	rm -rf fleet-smoke
	mkdir -p fleet-smoke/bin
	$(GO) build -o fleet-smoke/bin/sepverify ./cmd/sepverify
	$(GO) build -o fleet-smoke/bin/sepfleet ./cmd/sepfleet
	fleet-smoke/bin/sepverify -exhaustive -target minisue:register-leak > fleet-smoke/direct.txt
	fleet-smoke/bin/sepfleet -target minisue:register-leak -shards 2 -dir fleet-smoke/work \
		-throttle 3ms -checkpoint-every 1 -poll 50ms -kill-once 0@3 \
		> fleet-smoke/fleet.txt 2> fleet-smoke/fleet.log
	grep -q 'kill-once firing' fleet-smoke/fleet.log
	grep -q 'restarting from checkpoint' fleet-smoke/fleet.log
	grep -q 'resumed shard 0/2' fleet-smoke/work/shard-0.log
	head -1 fleet-smoke/direct.txt > fleet-smoke/direct-verdict.txt
	head -1 fleet-smoke/fleet.txt > fleet-smoke/fleet-verdict.txt
	diff fleet-smoke/direct-verdict.txt fleet-smoke/fleet-verdict.txt
	@echo "fleet-smoke: worker killed, resumed from checkpoint, merged verdict matches direct run"

# Continuous-verification smoke (E19): three sepwatch builds of the
# "honest" deployment. Build 2 re-verifies the unchanged deployment — the
# appended ledger record must carry the identical trace digest and no
# drift (idempotence). Build 3 plants SharedScratch behind the unchanged
# deployment name (-override-leak): the ledger diff must classify exactly
# one verdict flip and exactly one trace-digest drift, located down to the
# first divergent event; `sepwatch diff` re-derives the same verdict
# offline from the chained ledger alone. A final one-cycle serve run
# exercises the cycle engine end to end. Artifacts land in watch-smoke/
# for CI upload.
WATCHFLAGS := -dir watch-smoke/work -seed 7 -trials 3 -steps 50 -tracesteps 120 -log watch-smoke/events.jsonl
watch-smoke:
	rm -rf watch-smoke
	mkdir -p watch-smoke/bin
	$(GO) build -o watch-smoke/bin/sepwatch ./cmd/sepwatch
	watch-smoke/bin/sepwatch check $(WATCHFLAGS) -build build1 honest > watch-smoke/build1.txt
	grep -q 'seq=1 .* PASS' watch-smoke/build1.txt
	watch-smoke/bin/sepwatch check $(WATCHFLAGS) -build build2 honest > watch-smoke/build2.txt
	grep -q 'seq=2 .* PASS .* drift=0' watch-smoke/build2.txt
	grep -o 'digest=[0-9a-f]*' watch-smoke/build1.txt > watch-smoke/digest1.txt
	grep -o 'digest=[0-9a-f]*' watch-smoke/build2.txt > watch-smoke/digest2.txt
	diff watch-smoke/digest1.txt watch-smoke/digest2.txt
	! watch-smoke/bin/sepwatch check $(WATCHFLAGS) -build build3 -override-leak SharedScratch honest > watch-smoke/build3.txt
	grep -q 'FAIL' watch-smoke/build3.txt
	test "$$(grep -c 'drift verdict-flip' watch-smoke/build3.txt)" = 1
	test "$$(grep -c 'drift digest-drift' watch-smoke/build3.txt)" = 1
	grep -q 'diverges at event' watch-smoke/build3.txt
	! watch-smoke/bin/sepwatch diff -dir watch-smoke/work -deployment honest > watch-smoke/diff.txt
	grep -q 'drift verdict-flip' watch-smoke/diff.txt
	watch-smoke/bin/sepwatch diff -dir watch-smoke/work -deployment honest -a 1 -b 2 > watch-smoke/diff-idempotent.txt
	grep -q 'no drift' watch-smoke/diff-idempotent.txt
	watch-smoke/bin/sepwatch history -dir watch-smoke/work > watch-smoke/history.txt
	grep -q 'honest: 3 builds' watch-smoke/history.txt
	watch-smoke/bin/sepwatch serve -addr '' -cycles 1 -interval 0s \
		-dir watch-smoke/serve -seed 7 -trials 3 -steps 50 -tracesteps 120 \
		-deployments honest,leak-RegisterLeak,toy-secure > watch-smoke/serve.txt
	grep -q 'cycle 1: 3 deployments, 0 drift, 0 verdict flips, 0 errors' watch-smoke/serve.txt
	@echo "watch-smoke: idempotent re-verification clean, planted leak classified as verdict flip + digest drift"

# Race-detector pass over the concurrent verification engine, the kernel
# adapter it replicates, the witness store fed from worker results, and the
# observability counters they share.
race:
	$(GO) test -race ./internal/separability/... ./internal/kernel/... ./internal/witness/... ./internal/obs/... ./internal/watch/...

test:
	$(GO) test ./...

# Experiment benchmarks (E1..E15); see EXPERIMENTS.md. The results are
# also parsed into BENCH_verify.json (name, ns/op, speedup-x, workers,
# GOMAXPROCS) for machine consumption. A committed baseline lives at
# BENCH_verify.json; regenerate it with this target when the experiment
# set changes.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' | $(GO) run ./cmd/benchjson -out BENCH_verify.json

# One-iteration benchmark smoke for CI: exercises every experiment once
# and emits the same JSON schema as `make bench` without the cost of
# steady-state timing (the numbers are NOT comparable to the baseline).
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' | $(GO) run ./cmd/benchjson -out BENCH_smoke.json
