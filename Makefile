GO ?= go

.PHONY: verify race test bench bench-smoke lint fuzz-smoke

# Tier-1 gate: vet, build, full test suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Repository-invariant linter (see internal/lint): obs stays dependency
# free, raw machine state stays behind the kernel adapter, tracing hooks
# never mutate.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/seplint .

# Short fuzzing pass over the assembler and the static-analyzer CFG
# builder; the committed corpus seeds both.
fuzz-smoke:
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzAssemble -fuzztime 10s
	$(GO) test ./internal/staticflow -run '^$$' -fuzz FuzzBuildCFG -fuzztime 10s

# Race-detector pass over the concurrent verification engine, the kernel
# adapter it replicates, and the observability counters they share.
race:
	$(GO) test -race ./internal/separability/... ./internal/kernel/... ./internal/obs/...

test:
	$(GO) test ./...

# Experiment benchmarks (E1..E13); see EXPERIMENTS.md. The results are
# also parsed into BENCH_verify.json (name, ns/op, speedup-x, workers,
# GOMAXPROCS) for machine consumption. A committed baseline lives at
# BENCH_verify.json; regenerate it with this target when the experiment
# set changes.
bench:
	$(GO) test -bench=. -benchmem -run '^$$' | $(GO) run ./cmd/benchjson -out BENCH_verify.json

# One-iteration benchmark smoke for CI: exercises every experiment once
# and emits the same JSON schema as `make bench` without the cost of
# steady-state timing (the numbers are NOT comparable to the baseline).
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' | $(GO) run ./cmd/benchjson -out BENCH_smoke.json
