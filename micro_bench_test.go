package repro

// Micro-benchmarks for the substrate: raw costs of the machine simulator,
// snapshots, the kernel's abstraction function and the assembler. These
// document where the verification tooling's time goes (Abstract dominates
// randomized checking; snapshots dominate Save/Restore).

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/verifysys"
)

func BenchmarkMicroInstructionALU(b *testing.B) {
	m := machine.New(0x1000)
	im := asm.MustAssemble(`
		.org 0x100
	loop:
		ADD #1, R0
		XOR R0, R1
		BR loop
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// benchMicroDispatch measures raw instruction dispatch over a long
// straight-line block of register/immediate ALU traffic closed by a branch
// — the shape the verification hot loops spend their time in — driven
// through Run, the bulk-execution path. ns/op is ns per instruction. The
// Translated/Interpreted pair records the translation cache's speedup
// (ROADMAP raw-speed item; see EXPERIMENTS.md E15).
func benchMicroDispatch(b *testing.B, translate bool) {
	m := machine.New(0x1000)
	m.SetTranslation(translate)
	im := asm.MustAssemble(`
		.org 0x100
	loop:
		ADD #1, R0
		XOR R0, R1
		ADD #3, R2
		AND R0, R3
		OR R2, R4
		SUB #1, R5
		MOV R0, R5
		SHL #1, R1
		ADD R2, R0
		XOR #0x55, R4
		MOV #7, R3
		MUL R0, R2
		BR loop
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	b.ResetTimer()
	m.Run(b.N)
}

func BenchmarkMicroDispatchTranslated(b *testing.B)  { benchMicroDispatch(b, true) }
func BenchmarkMicroDispatchInterpreted(b *testing.B) { benchMicroDispatch(b, false) }

func BenchmarkMicroInstructionMemory(b *testing.B) {
	m := machine.New(0x1000)
	im := asm.MustAssemble(`
		.org 0x100
	loop:
		MOV @0x300, R0
		MOV R0, @0x302
		BR loop
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkMicroTrapRoundTrip(b *testing.B) {
	m := machine.New(0x1000)
	im := asm.MustAssemble(`
		.org 0x100
		MOV #handler, @0x0C
		MOV #0x00E0, @0x0D
	loop:
		TRAP #1
		BR loop
	handler:
		RTI
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.SetReg(machine.RegSP, 0x800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkMicroSnapshot(b *testing.B) {
	m := machine.New(0x2000)
	tty := machine.NewTTY("t", 1)
	m.Attach(tty)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Snapshot()
		_ = s
	}
}

func BenchmarkMicroSnapshotRestore(b *testing.B) {
	m := machine.New(0x2000)
	s := m.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Restore(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSnapshotHash(b *testing.B) {
	m := machine.New(0x2000)
	s := m.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Hash()
	}
}

func BenchmarkMicroAbstract(b *testing.B) {
	sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
	if err != nil {
		b.Fatal(err)
	}
	sys.K.Run(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Abstract("worker")
	}
}

func BenchmarkMicroPerturb(b *testing.B) {
	sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
	if err != nil {
		b.Fatal(err)
	}
	sys.K.Run(500)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.PerturbOutside("worker", rng)
	}
}

func BenchmarkMicroAssemble(b *testing.B) {
	src := kernel.Prelude + verifysys.WorkerSrc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroKernelBoot(b *testing.B) {
	sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.K.Boot(); err != nil {
			b.Fatal(err)
		}
	}
}
