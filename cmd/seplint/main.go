// Command seplint runs the repository-invariant linter (package lint) over
// a source tree and prints one line per violation:
//
//	seplint [root]
//
// Exit status 0 means every invariant holds, 1 means violations were
// printed, 2 means the tree could not be read. Wired into `make lint` and
// CI so the three architecture rules — obs imports nothing, raw machine
// state stays behind the kernel adapter, tracing hooks never mutate — stay
// true as the codebase grows.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	diags, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seplint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "seplint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
