// Command sepwitness manages counterexample witness artifacts captured by
// sepverify -witness-dir (see internal/witness).
//
//	sepwitness -dir W list                  # one line per stored witness
//	sepwitness -dir W show [ID...]          # full JSON records
//	sepwitness -dir W replay [ID...]        # re-execute against fresh systems
//	sepwitness -dir W diff OTHERDIR         # compare two witness stores
//
// replay rebuilds each witness's system from its recorded SystemSpec,
// restores the pre-state snapshot, re-applies the recorded input sequence
// and asserts that the recorded condition fires for the recorded colour
// with the recorded Φ^c digest pair. Exit status is 0 when every selected
// witness replays (or the stores agree, for diff), 1 otherwise, 2 on usage
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/verifysys"
	"repro/internal/witness"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sepwitness", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "witnesses", "witness artifact directory")
	notranslate := fs.Bool("notranslate", false,
		"replay on systems with the translation cache disabled (host-state independence check)")
	requireShrink := fs.Bool("require-shrink", false,
		"with replay: additionally fail unless the store's witnesses were shrunk overall")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sepwitness [-dir DIR] [-notranslate] [-require-shrink] <list|show|replay|diff> [args]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	ws, err := witness.Load(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "sepwitness:", err)
		return 2
	}

	switch cmd {
	case "list":
		return cmdList(ws, stdout)
	case "show":
		return cmdShow(ws, rest, stdout, stderr)
	case "replay":
		return cmdReplay(*dir, ws, rest, *notranslate, *requireShrink, stdout, stderr)
	case "diff":
		if len(rest) != 1 {
			fmt.Fprintln(stderr, "sepwitness: diff needs exactly one other directory")
			return 2
		}
		other, err := witness.Load(rest[0])
		if err != nil {
			fmt.Fprintln(stderr, "sepwitness:", err)
			return 2
		}
		return cmdDiff(*dir, ws, rest[0], other, stdout)
	default:
		fmt.Fprintf(stderr, "sepwitness: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

// describe renders the one-line summary of a witness.
func describe(w *witness.Witness) string {
	sys := w.System.Kind
	if w.System.Leak != "" {
		sys += "/" + w.System.Leak
	}
	if !w.System.Cut {
		sys += " (uncut)"
	}
	return fmt.Sprintf("%-16s %-28s %-8s %-22s steps %3d->%-3d %s!=%s",
		w.ID, w.ConditionName, w.Colour, sys, w.OrigSteps, len(w.Steps), w.Want, w.Got)
}

func cmdList(ws []*witness.Witness, stdout io.Writer) int {
	for _, w := range ws {
		fmt.Fprintln(stdout, describe(w))
	}
	if len(ws) == 0 {
		fmt.Fprintln(stdout, "no witnesses")
	}
	return 0
}

// select filters the store by ID prefixes; no arguments selects everything.
func selectWitnesses(ws []*witness.Witness, ids []string, stderr io.Writer) ([]*witness.Witness, bool) {
	if len(ids) == 0 {
		return ws, true
	}
	var out []*witness.Witness
	for _, id := range ids {
		found := false
		for _, w := range ws {
			if strings.HasPrefix(w.ID, id) {
				out = append(out, w)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(stderr, "sepwitness: no witness matches %q\n", id)
			return nil, false
		}
	}
	return out, true
}

func cmdShow(ws []*witness.Witness, ids []string, stdout, stderr io.Writer) int {
	sel, ok := selectWitnesses(ws, ids, stderr)
	if !ok {
		return 2
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	for _, w := range sel {
		if err := enc.Encode(w); err != nil {
			fmt.Fprintln(stderr, "sepwitness:", err)
			return 2
		}
	}
	return 0
}

func cmdReplay(dir string, ws []*witness.Witness, ids []string,
	notranslate, requireShrink bool, stdout, stderr io.Writer) int {

	sel, ok := selectWitnesses(ws, ids, stderr)
	if !ok {
		return 2
	}
	if len(sel) == 0 {
		fmt.Fprintln(stderr, "sepwitness: nothing to replay")
		return 1
	}
	failures, dropped := 0, 0
	for _, w := range sel {
		dropped += w.OrigSteps - len(w.Steps)
		spec := w.System
		if notranslate {
			spec.NoTranslate = true
		}
		sys, err := verifysys.FromSpec(spec)
		if err != nil {
			fmt.Fprintf(stderr, "sepwitness: %s: %v\n", w.ID, err)
			failures++
			continue
		}
		if err := w.LoadState(dir); err != nil {
			fmt.Fprintf(stderr, "sepwitness: %s: %v\n", w.ID, err)
			failures++
			continue
		}
		v, err := witness.Replay(sys, w)
		if err != nil {
			fmt.Fprintf(stdout, "FAIL %s: %v\n", w.ID, err)
			failures++
			continue
		}
		fmt.Fprintf(stdout, "ok   %s  %s fired for %s at replayed step %d (%d ops, digests %016x!=%016x)\n",
			w.ID, v.Condition, v.Colour, len(w.Steps)-1, len(w.Steps), v.Want, v.Got)
	}
	fmt.Fprintf(stdout, "replayed %d/%d witnesses, %d ops shrunk away in total\n",
		len(sel)-failures, len(sel), dropped)
	if failures > 0 {
		return 1
	}
	if requireShrink && dropped == 0 {
		fmt.Fprintln(stdout, "FAIL: -require-shrink set but no witness was shrunk")
		return 1
	}
	return 0
}

// diffKey identifies the violation a witness demonstrates, independent of
// the specific walk that reaches it — the unit of cross-build comparison.
func diffKey(w *witness.Witness) string {
	sys := w.System.Kind + "/" + w.System.Leak
	if !w.System.Cut {
		sys += "/uncut"
	}
	return fmt.Sprintf("%s %s %s", sys, w.ConditionName, w.Colour)
}

func cmdDiff(dirA string, a []*witness.Witness, dirB string, b []*witness.Witness, stdout io.Writer) int {
	am, bm := map[string]*witness.Witness{}, map[string]*witness.Witness{}
	add := func(m map[string]*witness.Witness, ws []*witness.Witness) {
		for _, w := range ws {
			if k := diffKey(w); m[k] == nil {
				m[k] = w
			}
		}
	}
	add(am, a)
	add(bm, b)
	var keys []string
	for k := range am {
		keys = append(keys, k)
	}
	for k := range bm {
		if am[k] == nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	differ := 0
	for _, k := range keys {
		wa, wb := am[k], bm[k]
		switch {
		case wa == nil:
			fmt.Fprintf(stdout, "only in %s: %s (%s)\n", dirB, k, wb.ID)
			differ++
		case wb == nil:
			fmt.Fprintf(stdout, "only in %s: %s (%s)\n", dirA, k, wa.ID)
			differ++
		case wa.ID == wb.ID:
			fmt.Fprintf(stdout, "same:      %s (%s)\n", k, wa.ID)
		default:
			fmt.Fprintf(stdout, "changed:   %s (%s -> %s, steps %d -> %d)\n",
				k, wa.ID, wb.ID, len(wa.Steps), len(wb.Steps))
		}
	}
	fmt.Fprintf(stdout, "%d witnesses in %s, %d in %s, %d differences\n",
		len(a), dirA, len(b), dirB, differ)
	if differ > 0 {
		return 1
	}
	return 0
}
