package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/separability"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

// captureDir populates a witness store from a RegisterLeak run and returns
// its path.
func captureDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "w")
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	sys, err := verifysys.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := separability.Options{Trials: 10, StepsPerTrial: 100, Seed: 99}
	res := separability.CheckRandomized(sys, opt)
	if res.Passed() {
		t.Fatal("leak not caught; no witnesses to test the CLI on")
	}
	if _, err := witness.Capture(sys, opt, res, witness.Options{Dir: dir, System: spec}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIListShowReplayDiff(t *testing.T) {
	dir := captureDir(t)

	code, out, _ := run(t, "-dir", dir, "list")
	if code != 0 || !strings.Contains(out, "condition") {
		t.Fatalf("list: code=%d out=%q", code, out)
	}
	id := strings.Fields(out)[0]

	code, out, _ = run(t, "-dir", dir, "show", id)
	if code != 0 || !strings.Contains(out, `"checkSeed"`) {
		t.Fatalf("show: code=%d out=%q", code, out)
	}

	code, out, _ = run(t, "-dir", dir, "-require-shrink", "replay")
	if code != 0 {
		t.Fatalf("replay: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "ok   "+id) {
		t.Errorf("replay output missing witness %s:\n%s", id, out)
	}

	// Replay under -notranslate must agree (host-state independence).
	if code, out, _ = run(t, "-dir", dir, "-notranslate", "replay", id); code != 0 {
		t.Fatalf("replay -notranslate: code=%d out=%q", code, out)
	}

	// A store diffed against itself agrees; against an empty store it
	// differs with exit 1.
	if code, _, _ = run(t, "-dir", dir, "diff", dir); code != 0 {
		t.Errorf("self-diff: code=%d", code)
	}
	if code, _, _ = run(t, "-dir", dir, "diff", t.TempDir()); code != 1 {
		t.Errorf("diff vs empty store: code=%d, want 1", code)
	}
}

func TestCLIErrors(t *testing.T) {
	if code, _, _ := run(t); code != 2 {
		t.Errorf("no command: code=%d, want 2", code)
	}
	if code, _, _ := run(t, "-dir", t.TempDir(), "frobnicate"); code != 2 {
		t.Errorf("unknown command: code=%d, want 2", code)
	}
	if code, _, _ := run(t, "-dir", t.TempDir(), "replay", "deadbeef"); code != 2 {
		t.Errorf("unknown ID: code=%d, want 2", code)
	}
	// An empty store replays nothing — that is a failure, not a silent pass.
	if code, _, _ := run(t, "-dir", t.TempDir(), "replay"); code != 1 {
		t.Errorf("empty replay: code=%d, want 1", code)
	}
}
