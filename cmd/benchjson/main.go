// Command benchjson converts `go test -bench` output into a small JSON
// report. It tees its stdin to stdout unchanged (so the human-readable
// benchmark table still appears) and writes the parsed results to -out:
//
//	go test -bench=. -benchmem -run '^$' | benchjson -out BENCH_verify.json
//
// Each benchmark line contributes its name, iteration count, ns/op and any
// custom metrics (speedup-x, workers, leaks-caught, ...); the header lines
// contribute goos/goarch/cpu, and the report records GOMAXPROCS.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchResult struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_verify.json", "file to write the JSON report to")
	flag.Parse()

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
}

// parseBenchLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkE8ConditionCheckingParallel-8  5  238629494 ns/op  3.1 speedup-x  8.0 workers
//
// The fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	b := benchResult{Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, true
}
