// Command sepasm assembles SM11 source and inspects the result: words,
// symbols, and a disassembly listing (round-tripping through the machine's
// decoder, which doubles as a self-check of the toolchain).
//
//	sepasm prog.s            # assemble, print a listing
//	sepasm -sym prog.s       # also dump the symbol table
//	sepasm -kernel prog.s    # prepend the SUE-Go kernel ABI prelude
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
)

func main() {
	syms := flag.Bool("sym", false, "dump the symbol table")
	withPrelude := flag.Bool("kernel", false, "prepend the kernel ABI prelude")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sepasm [-sym] [-kernel] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	text := string(src)
	if *withPrelude {
		text = kernel.Prelude + text
	}
	im, err := asm.Assemble(text)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("; %d words at org %#04x\n", len(im.Words), im.Org)

	// Invert the symbol table for label annotations.
	byAddr := map[machine.Word][]string{}
	var names []string
	for name, addr := range im.Symbols {
		byAddr[addr] = append(byAddr[addr], name)
		names = append(names, name)
	}
	sort.Strings(names)

	pos := 0
	for pos < len(im.Words) {
		addr := im.Org + machine.Word(pos)
		for _, l := range byAddr[addr] {
			fmt.Printf("%s:\n", l)
		}
		text, n := machine.Disasm(im.Words[pos:])
		fmt.Printf("  %04x:", addr)
		for i := 0; i < n; i++ {
			fmt.Printf(" %04x", im.Words[pos+i])
		}
		for i := n; i < 3; i++ {
			fmt.Print("     ")
		}
		fmt.Printf("  %s\n", text)
		pos += n
	}

	if *syms {
		fmt.Println("\n; symbols")
		for _, name := range names {
			fmt.Printf(";   %-16s %#04x\n", name, im.Symbols[name])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sepasm:", err)
	os.Exit(1)
}
