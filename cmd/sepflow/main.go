// Command sepflow runs the machine-level static information-flow analyzer
// (package staticflow) over assembled SM11 programs and over the kernel's
// context-switch sequence.
//
// With file arguments it analyzes each program under a single-colour
// partition spec (plus any -peers reachable over channels) and exits 1 if
// any program is rejected:
//
//	sepflow -colour red -peers black programs/chanpair.s
//
// With no arguments (or -swap) it reproduces the paper's §4 demonstration:
// the kernel's concrete SWAP sequence — manifestly secure, and proved
// separable by `sepverify` — is REJECTED, while the abstract specification
// (only the scheduling variable changes) is CERTIFIED. Add -dynamic to run
// the randomized Proof of Separability on the standard verification system
// right next to it, printing the two verdicts side by side.
//
// Add -triage to classify each residual static flow against dynamic
// evidence: flows matching a captured counterexample in the -witness-dir
// store are CONFIRMED, flows dismissed by a passing -dynamic check are
// SPURIOUS, the rest stay UNDECIDED:
//
//	sepverify -leak RegisterLeak -seed 99 -witness-dir /tmp/ws
//	sepflow -swap -dynamic -triage -witness-dir /tmp/ws
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/separability"
	"repro/internal/staticflow"
	"repro/internal/staticflow/triage"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("sepflow", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	colour := fs.String("colour", "red", "entry colour for analyzed programs")
	peersFlag := fs.String("peers", "", "comma-separated peer colours reachable over channels")
	uncut := fs.Bool("uncut", false, "channels are uncut: RECV imports the peers' colours")
	part := fs.Uint("part", 0x1000, "partition size in words")
	swap := fs.Bool("swap", false, "analyze the kernel SWAP sequence (the default with no files)")
	dynamic := fs.Bool("dynamic", false, "also run the randomized Proof of Separability (with -swap)")
	triageFlag := fs.Bool("triage", false,
		"classify each residual SWAP flow against dynamic evidence (with -swap)")
	witnessDir := fs.String("witness-dir", "",
		"witness store to triage against (see sepverify -witness-dir)")
	quiet := fs.Bool("q", false, "print one-line summaries instead of full reports")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var peers []staticflow.Colour
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, staticflow.Colour(p))
		}
	}

	if fs.NArg() == 0 || *swap {
		return runSwap(out, *dynamic, *triageFlag, *quiet, *witnessDir)
	}

	exit := 0
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepflow:", err)
			return 2
		}
		img, err := asm.Assemble(kernel.Prelude + string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepflow:", err)
			return 2
		}
		spec := staticflow.ProgramSpec(filepath.Base(path),
			staticflow.Colour(*colour), peers, staticflow.Word(*part))
		spec.Uncut = *uncut
		rep, err := staticflow.Analyze(img, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepflow:", err)
			return 2
		}
		if *quiet {
			fmt.Fprintln(out, rep.Summary())
		} else {
			fmt.Fprint(out, rep.String())
		}
		if !rep.Certified() {
			exit = 1
		}
	}
	return exit
}

// runSwap prints the §4 demonstration. The rejection here is the expected
// outcome, so this mode exits 0 unless something breaks outright.
func runSwap(out io.Writer, dynamic, triageFlag, quiet bool, witnessDir string) int {
	colours := []staticflow.Colour{"red", "black"}
	conc, err := staticflow.AnalyzeKernelSwap(colours, 0, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepflow:", err)
		return 2
	}
	abs, err := staticflow.AnalyzeKernelSwapAbstract(colours, 0, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepflow:", err)
		return 2
	}
	if quiet {
		fmt.Fprintln(out, conc.Summary())
		fmt.Fprintln(out, abs.Summary())
	} else {
		fmt.Fprint(out, conc.String())
		fmt.Fprint(out, abs.String())
	}

	cleanPass := false
	cleanNote := ""
	dynVerdict := "see `sepverify` (run with -dynamic to check here)"
	if dynamic {
		sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepflow:", err)
			return 2
		}
		res := separability.CheckRandomized(sys, separability.Options{
			Trials: 10, StepsPerTrial: 100, Seed: 99, CheckScheduling: true,
		})
		if res.Passed() {
			dynVerdict = "PROVED separable (" + res.Summary() + ")"
			cleanPass = true
			cleanNote = "proof of separability passed (10 trials, seed 99)"
		} else {
			dynVerdict = "FAILED (" + res.Summary() + ")"
			fmt.Fprintln(out, "sepflow: the honest kernel failed separability — investigate")
		}
	}

	if triageFlag {
		var ws []*witness.Witness
		if witnessDir != "" {
			ws, err = witness.Load(witnessDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sepflow:", err)
				return 2
			}
		}
		findings := triage.Classify(conc, triage.Options{
			Witnesses: ws, CleanPass: cleanPass, CleanNote: cleanNote,
		})
		fmt.Fprintln(out)
		fmt.Fprint(out, triage.Table(findings))
	}

	fmt.Fprintln(out)
	fmt.Fprintln(out, "verdict table (syntactic certification vs proof of separability):")
	fmt.Fprintf(out, "  %-28s %-11s %s\n", "subject", "static IFA", "separability")
	fmt.Fprintf(out, "  %-28s %-11s %s\n", "kernel SWAP (concrete)", conc.Verdict(), dynVerdict)
	fmt.Fprintf(out, "  %-28s %-11s %s\n", "kernel SWAP (abstract spec)", abs.Verdict(),
		"(specification only)")
	fmt.Fprintln(out)
	fmt.Fprintln(out, "The concrete switch sequence is manifestly secure yet syntactically")
	fmt.Fprintln(out, "uncertifiable; the abstract specification certifies. This is the")
	fmt.Fprintln(out, "paper's case for proving separation semantically.")
	return 0
}
