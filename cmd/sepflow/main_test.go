package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/separability"
	"repro/internal/staticflow"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCLI(t *testing.T, wantExit int, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if got := run(args, &buf); got != wantExit {
		t.Fatalf("exit = %d, want %d; output:\n%s", got, wantExit, buf.String())
	}
	return buf.String()
}

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/sepflow -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// The three sample regime programs are all certified: they only touch their
// own partition, their own devices, and the sanctioned channel endpoints.
func TestGoldenPrograms(t *testing.T) {
	for _, prog := range []string{"counter", "echo", "chanpair"} {
		t.Run(prog, func(t *testing.T) {
			out := runCLI(t, 0, "-colour", "red", "-peers", "black",
				filepath.Join("..", "..", "programs", prog+".s"))
			golden(t, prog, out)
		})
	}
}

func TestGoldenKernelSwap(t *testing.T) {
	golden(t, "kernelswap", runCLI(t, 0, "-swap"))
}

// The acceptance gate for triage: on the golden (honest) kernel every
// residual SWAP flow is classified — the passing dynamic check dismisses
// all seven as SPURIOUS, and nothing is left UNDECIDED. The check is
// seeded, so the whole output is golden-stable.
func TestGoldenSwapTriage(t *testing.T) {
	golden(t, "triage_honest", runCLI(t, 0, "-swap", "-dynamic", "-triage"))
}

// With a witness store captured from the RegisterLeak build, triage
// upgrades exactly the R5 restore to CONFIRMED: the one residual flow the
// planted leak actually realizes.
func TestTriageWithRegisterLeakStore(t *testing.T) {
	dir := t.TempDir()
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	sys, err := verifysys.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	copt := separability.Options{Trials: 10, StepsPerTrial: 100, Seed: 99,
		CheckScheduling: true}
	res := separability.CheckRandomized(sys, copt)
	if res.Passed() {
		t.Fatal("RegisterLeak not caught; no store to triage against")
	}
	if _, err := witness.Capture(sys, copt, res, witness.Options{
		Dir: dir, System: spec}); err != nil {
		t.Fatal(err)
	}

	out := runCLI(t, 0, "-swap", "-dynamic", "-triage", "-witness-dir", dir)
	if !strings.Contains(out, "1 CONFIRMED, 6 SPURIOUS, 0 UNDECIDED (100% classified)") {
		t.Errorf("unexpected triage tally:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "CONFIRMED") && !strings.Contains(line, "residual flows") {
			if !strings.Contains(line, "r5") || !strings.Contains(line, "witness ") {
				t.Errorf("confirmed line is not the witnessed R5 restore: %s", line)
			}
		}
	}
}

func TestUncutChannelProgramRejected(t *testing.T) {
	out := runCLI(t, 1, "-colour", "red", "-peers", "black", "-uncut",
		filepath.Join("..", "..", "programs", "chanpair.s"))
	if out == "" {
		t.Fatal("no output")
	}
}

// TestSwapStaticallyRejectedYetSeparable is the PR's headline assertion,
// the paper's §4 in one test: the very context-switch logic that the
// randomized Proof of Separability PROVES leak-free on the running kernel
// is REJECTED by syntactic information-flow certification.
func TestSwapStaticallyRejectedYetSeparable(t *testing.T) {
	static, err := staticflow.AnalyzeKernelSwap([]staticflow.Colour{"red", "black"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if static.Certified() {
		t.Fatalf("static IFA certified the concrete SWAP:\n%s", static)
	}

	sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
	if err != nil {
		t.Fatal(err)
	}
	dyn := separability.CheckRandomized(sys, separability.Options{
		Trials: 10, StepsPerTrial: 100, Seed: 99, CheckScheduling: true,
	})
	if !dyn.Passed() {
		t.Fatalf("separability check failed on the honest kernel: %s", dyn.Summary())
	}
}
