// Command sepfleet coordinates a fleet of sepverify worker processes over
// one sharded exhaustive sweep.
//
//	sepfleet -target minisue:register-leak -shards 4
//
// The coordinator computes the deterministic chunk partition for the
// target, spawns one `sepverify -exhaustive -target T -shard k/n` process
// per shard (each writing a content-addressed shard-result file and a
// resumable checkpoint), watches the checkpoint files for progress, and
// restarts any worker that dies — the replacement resumes from the dead
// worker's checkpoint instead of starting over. When every shard has
// finished, the shard files are merged into the combined verdict, which is
// identical to a single unsharded run.
//
// Observability and fault injection:
//
//	sepfleet -listen :9090        # live /metrics: sep_fleet_{shards,done,restarts,units}_total
//	                              # plus per-shard sep_fleet_shard_frontier{shard="k"} and
//	                              # sep_fleet_shard_checkpoint_age_seconds{shard="k"} gauges
//	sepfleet -stall 30s           # SIGKILL+restart a worker whose frontier stalls
//	sepfleet -kill-once 0@2       # SIGKILL shard 0 once it has folded 2 chunks
//	sepfleet -throttle 5ms        # slow workers down (demo/test lever)
//
// Exit status is 0 when the merged verdict matches expectation (the target
// registry's, or -expect pass|fail), 1 on an unexpected verdict, 2 on
// operational failure (a shard exhausting its restart budget, unusable
// artifacts, bad flags).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/separability"
	"repro/internal/verifysys"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	target := flag.String("target", "", "registered exhaustive target to sweep (required; see sepverify -exhaustive -target)")
	shards := flag.Int("shards", 2, "worker processes / shards to partition the sweep across")
	workers := flag.Int("workers", 0, "checker goroutines per worker process (0 = one per core)")
	dir := flag.String("dir", "", "directory for shard artifacts, checkpoints and worker logs (default: a fresh temp dir)")
	sepverifyFlag := flag.String("sepverify", "", "sepverify binary to spawn (default: next to this binary, then $PATH)")
	listen := flag.String("listen", "", "serve live fleet counters at http://ADDR/metrics (e.g. :9090)")
	poll := flag.Duration("poll", 200*time.Millisecond, "checkpoint poll interval")
	stall := flag.Duration("stall", 0, "kill and restart a worker whose checkpoint frontier stalls this long (0 = never)")
	maxRestarts := flag.Int("max-restarts", 3, "restarts allowed per shard before the fleet gives up")
	maxViolations := flag.Int("max-violations", 8, "counterexamples collected per condition")
	chunk := flag.Int("chunk", 0, "states per chunk (0 = worker default); identical across the fleet by construction")
	ckEvery := flag.Int("checkpoint-every", 0, "worker checkpoint cadence in folded chunks (0 = worker default)")
	throttle := flag.Duration("throttle", 0, "per-chunk delay passed to workers (demo/test lever)")
	killOnce := flag.String("kill-once", "",
		"K@F: SIGKILL shard K's worker once its checkpoint shows F folded chunks (fault-injection demo)")
	expect := flag.String("expect", "", "pass|fail: override the expected verdict (default: the target registry's)")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "sepfleet: -target is required")
		return 2
	}
	t, err := verifysys.FindExhaustiveTarget(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepfleet:", err)
		return 2
	}
	expectSecure := t.Secure
	switch *expect {
	case "":
	case "pass":
		expectSecure = true
	case "fail":
		expectSecure = false
	default:
		fmt.Fprintf(os.Stderr, "sepfleet: bad -expect %q (want pass or fail)\n", *expect)
		return 2
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "sepfleet: -shards must be >= 1")
		return 2
	}
	killShard, killAfter, err := parseKillOnce(*killOnce)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepfleet:", err)
		return 2
	}
	bin, err := findSepverify(*sepverifyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepfleet: cannot locate sepverify binary:", err)
		return 2
	}
	workDir := *dir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "sepfleet-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepfleet:", err)
			return 2
		}
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sepfleet:", err)
		return 2
	}

	// The coordinator derives the same partition the workers will use, by
	// enumerating the target once: per-shard chunk ranges give resumed-aware
	// progress accounting and an ETA without any worker cooperation.
	sys := t.Build()
	states := 0
	sys.EnumerateStates(func(model.StateRef) bool { states++; return true })
	inputs := 0
	sys.EnumerateInputs(func(model.Input) bool { inputs++; return true })
	chunkSize := *chunk
	if chunkSize <= 0 {
		chunkSize = 64
	}
	nChunks := (states + chunkSize - 1) / chunkSize

	f := &fleet{
		target: *target, shards: *shards, dir: workDir, bin: bin,
		workers: *workers, chunk: *chunk, ckEvery: *ckEvery,
		maxViolations: *maxViolations, maxRestarts: *maxRestarts,
		throttle: *throttle, poll: *poll, stall: *stall,
		killShard: killShard, killAfter: killAfter,
		states: states, chunkSize: chunkSize, nChunks: nChunks,
		unitsPerState: 1 + inputs,
		reg:           obs.NewRegistry(),
		frontiers:     make([]int, *shards),
	}
	start := time.Now()
	f.lastAdvance = make([]time.Time, *shards)
	f.frontierG = make([]*obs.Gauge, *shards)
	f.ageG = make([]*obs.Gauge, *shards)
	for k := 0; k < *shards; k++ {
		lo, _ := shardChunkRange(k, *shards, nChunks)
		f.frontiers[k] = lo
		f.lastAdvance[k] = start
		f.frontierG[k] = f.reg.Gauge(fmt.Sprintf("sep_fleet_shard_frontier{shard=%q}", strconv.Itoa(k)))
		f.frontierG[k].Set(float64(lo))
		f.ageG[k] = f.reg.Gauge(fmt.Sprintf("sep_fleet_shard_checkpoint_age_seconds{shard=%q}", strconv.Itoa(k)))
	}
	f.reg.Counter("sep_fleet_shards_total").Add(uint64(*shards))
	f.restartsCnt = f.reg.Counter("sep_fleet_restarts_total")
	f.doneCnt = f.reg.Counter("sep_fleet_done_total")
	f.unitsCnt = f.reg.Counter("sep_fleet_units_total")

	if *listen != "" {
		bound, shutdown, err := obs.ListenMetricsOpts(*listen, f.reg, obs.ListenOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepfleet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "sepfleet: serving metrics at http://%s/metrics\n", bound)
		defer shutdown()
	}

	fmt.Fprintf(os.Stderr, "sepfleet: target %s: %d states x %d inputs, %d chunks across %d shards (dir %s)\n",
		*target, states, inputs, nChunks, *shards, workDir)

	stopProgress := f.startProgress()
	var wg sync.WaitGroup
	errs := make([]error, *shards)
	for k := 0; k < *shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = f.runShard(k)
		}(k)
	}
	wg.Wait()
	stopProgress()

	bad := false
	for k, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "sepfleet: shard %d failed: %v\n", k, err)
			bad = true
		}
	}
	if bad {
		return 2
	}

	paths := make([]string, *shards)
	for k := range paths {
		paths[k] = f.shardOutPath(k)
	}
	res, err := separability.MergeShardFiles(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepfleet: merge:", err)
		return 2
	}
	verdict := "as expected"
	good := res.Passed() == expectSecure
	if !good {
		verdict = "UNEXPECTED"
	}
	fmt.Printf("%-22s %-60s [%s]\n", *target+":", res.Summary(), verdict)
	fmt.Printf("    fleet: %d shards, %d restarts, artifacts in %s\n",
		*shards, f.restartsCnt.Value(), workDir)
	if good {
		return 0
	}
	return 1
}

// fleet carries the coordinator state shared between shard supervisors and
// the progress reporter.
type fleet struct {
	target        string
	shards        int
	dir           string
	bin           string
	workers       int
	chunk         int
	ckEvery       int
	maxViolations int
	maxRestarts   int
	throttle      time.Duration
	poll          time.Duration
	stall         time.Duration

	states        int
	chunkSize     int
	nChunks       int
	unitsPerState int

	reg         *obs.Registry
	restartsCnt *obs.Counter
	doneCnt     *obs.Counter
	unitsCnt    *obs.Counter
	// Per-shard gauges: the absolute checkpoint frontier and how long ago
	// it last advanced. Fleet-wide totals hide a single stalled shard; the
	// age gauge makes it visible on /metrics before the stall detector
	// resorts to killing the worker.
	frontierG []*obs.Gauge
	ageG      []*obs.Gauge

	mu          sync.Mutex
	frontiers   []int // absolute checkpoint frontier per shard
	lastAdvance []time.Time
	killShard int   // -1 = no fault injection
	killAfter int
	killDone  bool
}

func (f *fleet) shardOutPath(k int) string {
	return filepath.Join(f.dir, fmt.Sprintf("shard-%d.json", k))
}

func (f *fleet) checkpointPath(k int) string {
	return filepath.Join(f.dir, fmt.Sprintf("shard-%d.ck.json", k))
}

func (f *fleet) logPath(k int) string {
	return filepath.Join(f.dir, fmt.Sprintf("shard-%d.log", k))
}

// runShard supervises shard k to completion: spawn a worker, watch its
// checkpoint, and on any death restart it (the resume comes from the
// checkpoint file) until the shard-result artifact exists and validates or
// the restart budget is spent.
func (f *fleet) runShard(k int) error {
	for attempt := 0; ; attempt++ {
		logF, err := os.OpenFile(f.logPath(k), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		args := []string{"-exhaustive", "-target", f.target,
			"-shard", fmt.Sprintf("%d/%d", k, f.shards),
			"-shard-out", f.shardOutPath(k), "-checkpoint", f.checkpointPath(k),
			"-max-violations", strconv.Itoa(f.maxViolations)}
		if f.workers != 0 {
			args = append(args, "-workers", strconv.Itoa(f.workers))
		}
		if f.chunk != 0 {
			args = append(args, "-chunk", strconv.Itoa(f.chunk))
		}
		if f.ckEvery != 0 {
			args = append(args, "-checkpoint-every", strconv.Itoa(f.ckEvery))
		}
		if f.throttle > 0 {
			args = append(args, "-throttle", f.throttle.String())
		}
		cmd := exec.Command(f.bin, args...)
		cmd.Stdout, cmd.Stderr = logF, logF
		if err := cmd.Start(); err != nil {
			logF.Close()
			return err
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()
		err = f.watch(k, cmd, exited)
		logF.Close()
		if err == nil {
			if _, rerr := separability.ReadShardResult(f.shardOutPath(k)); rerr == nil {
				f.doneCnt.Add(1)
				return nil
			} else {
				err = fmt.Errorf("worker exited 0 but shard result is unusable: %w", rerr)
			}
		}
		if attempt >= f.maxRestarts {
			return fmt.Errorf("%w (restart budget %d spent)", err, f.maxRestarts)
		}
		f.restartsCnt.Add(1)
		fmt.Fprintf(os.Stderr, "sepfleet: shard %d worker died (%v); restarting from checkpoint (attempt %d/%d)\n",
			k, err, attempt+1, f.maxRestarts)
	}
}

// watch polls shard k's checkpoint until the worker exits, firing the
// kill-once fault injection and the stall detector along the way.
func (f *fleet) watch(k int, cmd *exec.Cmd, exited <-chan error) error {
	t := time.NewTicker(f.poll)
	defer t.Stop()
	lastAdvance := time.Now()
	for {
		select {
		case err := <-exited:
			f.pollCheckpoint(k, nil)
			return err
		case <-t.C:
			if f.pollCheckpoint(k, cmd) {
				lastAdvance = time.Now()
			} else if f.stall > 0 && time.Since(lastAdvance) > f.stall {
				fmt.Fprintf(os.Stderr, "sepfleet: shard %d stalled >%s; killing worker\n", k, f.stall)
				cmd.Process.Kill()
				lastAdvance = time.Now() // one kill per stall window
			}
		}
	}
}

// pollCheckpoint reads shard k's checkpoint file (atomic writes mean a read
// never observes a torn artifact), advances the shared frontier, and fires
// the one-shot kill when the fault-injection threshold is crossed.
func (f *fleet) pollCheckpoint(k int, cmd *exec.Cmd) (advanced bool) {
	ck, err := separability.ReadShardCheckpoint(f.checkpointPath(k))
	if err != nil || ck == nil {
		return false
	}
	f.mu.Lock()
	if ck.Frontier > f.frontiers[k] {
		f.frontiers[k] = ck.Frontier
		f.lastAdvance[k] = time.Now()
		advanced = true
	}
	f.frontierG[k].Set(float64(f.frontiers[k]))
	f.ageG[k].Set(time.Since(f.lastAdvance[k]).Seconds())
	doKill := cmd != nil && k == f.killShard && !f.killDone &&
		ck.Frontier-ck.StartChunk >= f.killAfter
	if doKill {
		f.killDone = true
	}
	f.mu.Unlock()
	if doKill {
		fmt.Fprintf(os.Stderr, "sepfleet: kill-once firing: SIGKILL shard %d at frontier %d\n", k, ck.Frontier)
		cmd.Process.Kill()
	}
	return advanced
}

// startProgress reports fleet-wide progress on stderr once a second:
// completed units (resumed work included), throughput and ETA, from the
// checkpoint frontiers alone.
func (f *fleet) startProgress() (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	start := time.Now()
	totalUnits := uint64(f.states) * uint64(f.unitsPerState)
	lastUnits := uint64(0)
	line := func() {
		f.mu.Lock()
		units := uint64(0)
		for k, fr := range f.frontiers {
			lo, _ := shardChunkRange(k, f.shards, f.nChunks)
			units += uint64(chunkRangeStates(lo, fr, f.chunkSize, f.states)) * uint64(f.unitsPerState)
			// Keep the age gauge moving even when the worker writes no
			// checkpoints at all — that is exactly the stall to surface.
			f.ageG[k].Set(time.Since(f.lastAdvance[k]).Seconds())
		}
		f.mu.Unlock()
		if units > lastUnits {
			f.unitsCnt.Add(units - lastUnits)
			lastUnits = units
		}
		elapsed := time.Since(start).Seconds()
		rate := float64(units) / elapsed
		extra := ""
		if rate > 0 && units < totalUnits {
			eta := time.Duration(float64(totalUnits-units) / rate * float64(time.Second))
			extra = fmt.Sprintf(", ~%s left", eta.Round(time.Second))
		}
		pct := 100.0
		if totalUnits > 0 {
			pct = 100 * float64(units) / float64(totalUnits)
		}
		fmt.Fprintf(os.Stderr, "sepfleet: %d/%d shards done, %d/%d units (%.1f%%), %.0f units/s%s, restarts=%d\n",
			f.doneCnt.Value(), f.shards, units, totalUnits, pct, rate, extra, f.restartsCnt.Value())
	}
	go func() {
		defer close(finished)
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				line()
			case <-done:
				line()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// shardChunkRange is the fleet's copy of the worker partition function:
// shard k of n covers chunk range [k*nChunks/n, (k+1)*nChunks/n).
func shardChunkRange(k, n, nChunks int) (lo, hi int) {
	return k * nChunks / n, (k + 1) * nChunks / n
}

// chunkRangeStates counts the states covered by chunk range [lo, hi).
func chunkRangeStates(lo, hi, chunkSize, states int) int {
	a := lo * chunkSize
	if a > states {
		a = states
	}
	b := hi * chunkSize
	if b > states {
		b = states
	}
	if b < a {
		return 0
	}
	return b - a
}

// parseKillOnce parses a "-kill-once K@F" spec into (shard, folded-chunk
// threshold); an empty spec disables fault injection (shard -1).
func parseKillOnce(s string) (shard, after int, err error) {
	if s == "" {
		return -1, 0, nil
	}
	ks, fs, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, fmt.Errorf("bad -kill-once %q (want K@F, e.g. 0@2)", s)
	}
	k, errK := strconv.Atoi(ks)
	n, errN := strconv.Atoi(fs)
	if errK != nil || errN != nil || k < 0 || n < 0 {
		return 0, 0, fmt.Errorf("bad -kill-once %q (want K@F with K, F >= 0)", s)
	}
	return k, n, nil
}

// findSepverify resolves the worker binary: an explicit -sepverify path, the
// sibling of this executable (the `make fleet-smoke` layout), then $PATH.
func findSepverify(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "sepverify")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	return exec.LookPath("sepverify")
}
