package main

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/separability"
)

func TestParseKillOnce(t *testing.T) {
	tests := []struct {
		in           string
		shard, after int
		wantErr      bool
	}{
		{"", -1, 0, false},
		{"0@2", 0, 2, false},
		{"3@0", 3, 0, false},
		{"12@345", 12, 345, false},
		{"2", 0, 0, true},
		{"@2", 0, 0, true},
		{"a@2", 0, 0, true},
		{"2@b", 0, 0, true},
		{"-1@2", 0, 0, true},
		{"1@-2", 0, 0, true},
	}
	for _, tc := range tests {
		shard, after, err := parseKillOnce(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseKillOnce(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && (shard != tc.shard || after != tc.after) {
			t.Errorf("parseKillOnce(%q) = (%d, %d), want (%d, %d)",
				tc.in, shard, after, tc.shard, tc.after)
		}
	}
}

// The fleet's partition must tile the chunk space exactly: contiguous,
// disjoint, complete — for any shard count, including more shards than
// chunks.
func TestShardChunkRangeTiles(t *testing.T) {
	for _, nChunks := range []int{0, 1, 5, 16, 1152} {
		for _, n := range []int{1, 2, 3, 4, 7, 20} {
			prev := 0
			for k := 0; k < n; k++ {
				lo, hi := shardChunkRange(k, n, nChunks)
				if lo != prev {
					t.Fatalf("nChunks=%d n=%d shard %d: lo=%d, want %d (gap or overlap)",
						nChunks, n, k, lo, prev)
				}
				if hi < lo {
					t.Fatalf("nChunks=%d n=%d shard %d: hi=%d < lo=%d", nChunks, n, k, hi, lo)
				}
				prev = hi
			}
			if prev != nChunks {
				t.Fatalf("nChunks=%d n=%d: shards cover %d chunks", nChunks, n, prev)
			}
		}
	}
}

func TestChunkRangeStates(t *testing.T) {
	// 10 states, chunk size 4 -> chunks of 4, 4, 2.
	tests := []struct {
		lo, hi, want int
	}{
		{0, 0, 0}, {0, 1, 4}, {0, 2, 8}, {0, 3, 10}, {1, 3, 6}, {2, 3, 2}, {3, 3, 0},
	}
	for _, tc := range tests {
		if got := chunkRangeStates(tc.lo, tc.hi, 4, 10); got != tc.want {
			t.Errorf("chunkRangeStates(%d, %d, 4, 10) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
	// A shard whose range lies entirely past the states (padding chunks).
	if got := chunkRangeStates(5, 7, 4, 10); got != 0 {
		t.Errorf("out-of-range chunk range counted %d states", got)
	}
}

// The per-shard gauges must follow a real checkpoint artifact: frontier
// tracks the folded-chunk position, and the age gauge resets on advance so
// a stalled shard shows up as a growing age before the stall detector
// kills it.
func TestPollCheckpointShardGauges(t *testing.T) {
	dir := t.TempDir()
	f := &fleet{
		shards: 1, dir: dir,
		reg:         obs.NewRegistry(),
		frontiers:   []int{0},
		lastAdvance: []time.Time{time.Now().Add(-time.Hour)},
		killShard:   -1,
	}
	f.frontierG = []*obs.Gauge{f.reg.Gauge(`sep_fleet_shard_frontier{shard="0"}`)}
	f.ageG = []*obs.Gauge{f.reg.Gauge(`sep_fleet_shard_checkpoint_age_seconds{shard="0"}`)}

	// No checkpoint file yet: nothing advances.
	if f.pollCheckpoint(0, nil) {
		t.Fatal("advanced with no checkpoint file")
	}

	// Write a real (aborted mid-sweep) checkpoint and poll it.
	sys := separability.NewToySystem(separability.ToySecure)
	_, err := separability.CheckExhaustiveShard(sys, separability.ExhaustiveOptions{
		Workers: 1, ChunkSize: 1, CheckpointEvery: 1, AbortAfterChunks: 2,
		Checkpoint: f.checkpointPath(0), Target: "toy:secure",
	})
	if err == nil {
		t.Fatal("want ErrAborted from the chunk budget")
	}
	if !f.pollCheckpoint(0, nil) {
		t.Fatal("valid checkpoint did not advance the frontier")
	}
	if got := f.reg.GaugeValue(`sep_fleet_shard_frontier{shard="0"}`); got < 2 {
		t.Errorf("frontier gauge = %g, want >= 2", got)
	}
	if age := f.reg.GaugeValue(`sep_fleet_shard_checkpoint_age_seconds{shard="0"}`); age > 60 {
		t.Errorf("age gauge = %gs, want freshly reset", age)
	}

	// Re-polling the same checkpoint is not an advance; age keeps growing.
	f.lastAdvance[0] = time.Now().Add(-30 * time.Second)
	if f.pollCheckpoint(0, nil) {
		t.Error("unchanged checkpoint counted as advance")
	}
	if age := f.reg.GaugeValue(`sep_fleet_shard_checkpoint_age_seconds{shard="0"}`); age < 29 {
		t.Errorf("age gauge = %gs, want ~30s for a stalled shard", age)
	}
}
