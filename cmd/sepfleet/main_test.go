package main

import "testing"

func TestParseKillOnce(t *testing.T) {
	tests := []struct {
		in           string
		shard, after int
		wantErr      bool
	}{
		{"", -1, 0, false},
		{"0@2", 0, 2, false},
		{"3@0", 3, 0, false},
		{"12@345", 12, 345, false},
		{"2", 0, 0, true},
		{"@2", 0, 0, true},
		{"a@2", 0, 0, true},
		{"2@b", 0, 0, true},
		{"-1@2", 0, 0, true},
		{"1@-2", 0, 0, true},
	}
	for _, tc := range tests {
		shard, after, err := parseKillOnce(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseKillOnce(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && (shard != tc.shard || after != tc.after) {
			t.Errorf("parseKillOnce(%q) = (%d, %d), want (%d, %d)",
				tc.in, shard, after, tc.shard, tc.after)
		}
	}
}

// The fleet's partition must tile the chunk space exactly: contiguous,
// disjoint, complete — for any shard count, including more shards than
// chunks.
func TestShardChunkRangeTiles(t *testing.T) {
	for _, nChunks := range []int{0, 1, 5, 16, 1152} {
		for _, n := range []int{1, 2, 3, 4, 7, 20} {
			prev := 0
			for k := 0; k < n; k++ {
				lo, hi := shardChunkRange(k, n, nChunks)
				if lo != prev {
					t.Fatalf("nChunks=%d n=%d shard %d: lo=%d, want %d (gap or overlap)",
						nChunks, n, k, lo, prev)
				}
				if hi < lo {
					t.Fatalf("nChunks=%d n=%d shard %d: hi=%d < lo=%d", nChunks, n, k, hi, lo)
				}
				prev = hi
			}
			if prev != nChunks {
				t.Fatalf("nChunks=%d n=%d: shards cover %d chunks", nChunks, n, prev)
			}
		}
	}
}

func TestChunkRangeStates(t *testing.T) {
	// 10 states, chunk size 4 -> chunks of 4, 4, 2.
	tests := []struct {
		lo, hi, want int
	}{
		{0, 0, 0}, {0, 1, 4}, {0, 2, 8}, {0, 3, 10}, {1, 3, 6}, {2, 3, 2}, {3, 3, 0},
	}
	for _, tc := range tests {
		if got := chunkRangeStates(tc.lo, tc.hi, 4, 10); got != tc.want {
			t.Errorf("chunkRangeStates(%d, %d, 4, 10) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
	// A shard whose range lies entirely past the states (padding chunks).
	if got := chunkRangeStates(5, 7, 4, 10); got != 0 {
		t.Errorf("out-of-range chunk range counted %d states", got)
	}
}
