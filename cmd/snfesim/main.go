// Command snfesim runs the Secure Network Front End experiment (E4): a
// malicious red component tries several encodings to smuggle user data over
// the cleartext bypass, against censors of increasing strictness. The
// output is the E4 table: residual covert capacity and rate per cell, with
// end-to-end delivery and cleartext-leak checks alongside.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/snfe"
)

func main() {
	packets := flag.Int("packets", 64, "user-data packets per run")
	flag.Parse()

	rows, err := snfe.Sweep(*packets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snfesim:", err)
		os.Exit(1)
	}
	fmt.Printf("%-10s %-14s %-9s %-9s %-11s %-9s %-8s\n",
		"encoding", "censor", "cap(b/sym)", "b/round", "err-rate", "delivered", "leaked")
	last := ""
	for _, r := range rows {
		if last != "" && r.Encoding != last {
			fmt.Println()
		}
		last = r.Encoding
		cz := r.Censor
		if r.RateEvery > 0 {
			cz = fmt.Sprintf("%s+rate/%d", r.Censor, r.RateEvery)
		}
		m := r.Result.Covert
		fmt.Printf("%-10s %-14s %-10.3f %-9.4f %-11.2f %-9v %-8v\n",
			r.Encoding, cz, m.CapacityPerSymbol, m.BitsPerRound, m.ErrorRate,
			r.Result.Delivered, r.Result.Leaked)
	}
	fmt.Println("\nThe paper's claim (section 2): \"A fairly simple censor can reduce the")
	fmt.Println("bandwidth available for illicit communication over the bypass to an")
	fmt.Println("acceptable level.\" Compare each encoding's 'off' row with its censored rows.")
}
