// Command sepverify runs Proof of Separability against SUE-Go kernels.
//
//	sepverify                      # verify the honest kernel (cut channels)
//	sepverify -leak RegisterLeak   # verify a fault-injected kernel
//	sepverify -all                 # sweep: honest + every leak variant
//	sepverify -uncut               # show the configured channels as flows
//
// Exit status is 0 when the verification outcome matches expectation
// (honest passes / leaky is caught), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/kernel"
	"repro/internal/minisue"
	"repro/internal/separability"
	"repro/internal/verifysys"
)

func main() {
	leak := flag.String("leak", "", "inject one named leak (see -list)")
	list := flag.Bool("list", false, "list the available leak names")
	all := flag.Bool("all", false, "sweep the honest kernel and every leak variant")
	uncut := flag.Bool("uncut", false, "verify WITHOUT cutting channels (expected to fail)")
	trials := flag.Int("trials", 10, "random traces to explore")
	steps := flag.Int("steps", 100, "states checked per trace")
	seed := flag.Int64("seed", 1, "exploration seed")
	sched := flag.Bool("sched", true, "include the scheduling-independence extension")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"checker goroutines to shard trials across (results are identical for any value)")
	exhaustive := flag.Bool("exhaustive", false,
		"run the exhaustive proofs (MiniSUE + toy calibration) instead of the kernel check")
	flag.Parse()

	if *list {
		for _, name := range leakNames() {
			fmt.Println(name)
		}
		return
	}

	if *exhaustive {
		runExhaustive(*workers)
		return
	}

	opt := separability.Options{
		Trials: *trials, StepsPerTrial: *steps, Seed: *seed, CheckScheduling: *sched,
		Workers: *workers,
	}

	if *all {
		ok := runOne("honest", kernel.Leaks{}, true, opt, true)
		for _, name := range leakNames() {
			l := kernel.AllLeaks()[name]
			ok = runOne(name, l, true, opt, false) && ok
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	leaks := kernel.Leaks{}
	expectPass := true
	name := "honest"
	if *leak != "" {
		l, found := kernel.AllLeaks()[*leak]
		if !found {
			fmt.Fprintf(os.Stderr, "sepverify: unknown leak %q (try -list)\n", *leak)
			os.Exit(2)
		}
		leaks, expectPass, name = l, false, *leak
	}
	if *uncut {
		expectPass = false
		name += " (uncut)"
	}
	if !runOne(name, leaks, !*uncut, opt, expectPass) {
		os.Exit(1)
	}
}

func leakNames() []string {
	var names []string
	for n := range kernel.AllLeaks() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func runOne(name string, leaks kernel.Leaks, cut bool, opt separability.Options, expectPass bool) bool {
	sys, err := verifysys.Build(verifysys.ProbeFor(leaks), leaks, cut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepverify:", err)
		os.Exit(2)
	}
	res := separability.CheckRandomized(sys, opt)
	verdict := "as expected"
	good := res.Passed() == expectPass
	if !good {
		verdict = "UNEXPECTED"
	}
	fmt.Printf("%-22s %-60s [%s]\n", name+":", res.Summary(), verdict)
	if !res.Passed() {
		seen := map[separability.Condition]bool{}
		for _, v := range res.Violations {
			if seen[v.Condition] {
				continue
			}
			seen[v.Condition] = true
			fmt.Printf("    %s\n", v)
		}
	}
	return good
}

// runExhaustive performs the explicit-state proofs: the full MiniSUE state
// space and the toy-system calibration suite.
func runExhaustive(workers int) {
	fmt.Println("exhaustive proof over MiniSUE (a kernel-shaped model, ~74k states x 4 inputs):")
	for _, v := range []minisue.Variant{minisue.Secure, minisue.RegisterLeak,
		minisue.InterruptMisroute, minisue.SharedCell} {
		res := separability.CheckExhaustiveWorkers(minisue.New(v), 8, workers)
		fmt.Printf("  %-20s %s\n", minisue.VariantName(v)+":", res.Summary())
	}
	fmt.Println("\ncalibration toys (1024 states x 4 inputs, one condition violated each):")
	variants := []separability.ToyVariant{separability.ToySecure,
		separability.ToyCovertStore, separability.ToyDirectWrite,
		separability.ToyInputSnoop, separability.ToyInputCross,
		separability.ToyOutputLeak, separability.ToyNextOpLeak}
	for _, v := range variants {
		res := separability.CheckExhaustiveWorkers(separability.NewToySystem(v), 4, workers)
		fmt.Printf("  %-20s %s\n", separability.ToyVariantName(v)+":", res.Summary())
	}
}
