// Command sepverify runs Proof of Separability against SUE-Go kernels.
//
//	sepverify                      # verify the honest kernel (cut channels)
//	sepverify -leak RegisterLeak   # verify a fault-injected kernel
//	sepverify -all                 # sweep: honest + every leak variant
//	sepverify -uncut               # show the configured channels as flows
//
// Exhaustive (explicit-state) proofs, shardable across processes:
//
//	sepverify -exhaustive                            # the full proof suite
//	sepverify -exhaustive -target minisue:secure     # one registered target
//	sepverify -exhaustive -target T -shard 1/4 \
//	          -shard-out s1.json -checkpoint s1.ck   # one resumable shard
//	sepverify -merge s0.json s1.json s2.json s3.json # fold shard artifacts
//
// A sharded sweep writes a versioned, content-addressed shard-result file;
// -merge folds a complete shard set into the combined verdict, which is
// byte-identical to the unsharded run. -checkpoint persists resumable
// progress at a bounded cadence, so a killed shard rerun skips finished
// work (see cmd/sepfleet for the multi-process coordinator).
//
// Observability (see internal/obs):
//
//	sepverify -metrics             # per-condition check counts + worker throughput
//	sepverify -progress            # periodic progress lines (throughput, ETA)
//	sepverify -cpuprofile cpu.out  # pprof profiles of the verification run
//	sepverify -listen :9090 -pprof # live /metrics plus /debug/pprof handlers
//	sepverify -witness-dir W       # persist replayable counterexample witnesses
//
// Exit status is 0 when the verification outcome matches expectation
// (honest passes / leaky is caught), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/minisue"
	"repro/internal/obs"
	"repro/internal/separability"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the whole run so deferred cleanup (pprof stop, progress
// ticker shutdown) executes before the process exits.
func realMain() int {
	leak := flag.String("leak", "", "inject one named leak (see -list)")
	list := flag.Bool("list", false, "list the available leak names")
	all := flag.Bool("all", false, "sweep the honest kernel and every leak variant")
	uncut := flag.Bool("uncut", false, "verify WITHOUT cutting channels (expected to fail)")
	trials := flag.Int("trials", 10, "random traces to explore")
	steps := flag.Int("steps", 100, "states checked per trace")
	seed := flag.Int64("seed", 1, "exploration seed")
	sched := flag.Bool("sched", true, "include the scheduling-independence extension")
	workers := flag.Int("workers", 0,
		"checker goroutines to shard trials across; 0 = one per CPU core (results are identical for any value)")
	exhaustive := flag.Bool("exhaustive", false,
		"run the exhaustive proofs (MiniSUE + toy calibration) instead of the kernel check")
	target := flag.String("target", "",
		"with -exhaustive: sweep one registered enumerable target (e.g. minisue:secure; see verifysys)")
	shardSpec := flag.String("shard", "",
		"with -target: run only shard k/n of the chunked state space (0-based), e.g. 1/4")
	shardOut := flag.String("shard-out", "",
		"with -target: write the sealed shard-result artifact to this file")
	checkpoint := flag.String("checkpoint", "",
		"with -target: persist resumable progress to this file and resume from it when present")
	checkpointEvery := flag.Int("checkpoint-every", 0,
		"checkpoint cadence in folded chunks (0 = 8)")
	chunk := flag.Int("chunk", 0,
		"states per work/checkpoint chunk (0 = 64); all shards of one fleet must agree")
	maxViolations := flag.Int("max-violations", 8,
		"counterexamples collected per condition in exhaustive sweeps")
	throttle := flag.Duration("throttle", 0,
		"sleep this long before each chunk (testing lever for kill/resume demos)")
	merge := flag.Bool("merge", false,
		"merge the shard-result files given as arguments into the combined verdict")
	metrics := flag.Bool("metrics", false,
		"collect verifier metrics and dump a throughput report after the run")
	notranslate := flag.Bool("notranslate", false,
		"run the SM11 machines without the basic-block translation cache (A/B lever; verdicts are identical either way)")
	metricsFormat := flag.String("metrics-format", "prom",
		"registry dump format with -metrics: prom (Prometheus text) or json")
	progress := flag.Bool("progress", false,
		"print periodic progress lines (trials/states so far) to stderr")
	listen := flag.String("listen", "",
		"serve live verifier counters at http://ADDR/metrics while the run lasts (e.g. :9090)")
	pprofFlag := flag.Bool("pprof", false,
		"with -listen: also serve net/http/pprof handlers under /debug/pprof/")
	witnessDir := flag.String("witness-dir", "",
		"capture each distinct violation as a replayable witness artifact under this directory (see sepwitness)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *list {
		for _, name := range leakNames() {
			fmt.Println(name)
		}
		return 0
	}

	if *metricsFormat != "prom" && *metricsFormat != "json" {
		fmt.Fprintf(os.Stderr, "sepverify: unknown -metrics-format %q (want prom or json)\n", *metricsFormat)
		return 2
	}

	if *merge {
		return runMerge(flag.Args())
	}
	if *target != "" && !*exhaustive {
		fmt.Fprintln(os.Stderr, "sepverify: -target requires -exhaustive")
		return 2
	}
	if *target == "" && (*shardSpec != "" || *shardOut != "" || *checkpoint != "") {
		fmt.Fprintln(os.Stderr, "sepverify: -shard, -shard-out and -checkpoint require -target")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sepverify:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sepverify:", err)
			}
		}()
	}

	if *pprofFlag && *listen == "" {
		fmt.Fprintln(os.Stderr, "sepverify: -pprof requires -listen")
		return 2
	}

	// One registry serves -metrics, -progress and the final report; every
	// runOne in an -all sweep accumulates into it.
	var reg *obs.Registry
	if *metrics || *progress || *listen != "" || *witnessDir != "" {
		reg = obs.NewRegistry()
	}
	start := time.Now()
	if *progress {
		variants := uint64(1)
		if *all {
			variants += uint64(len(leakNames()))
		}
		expectStates := uint64(0)
		if !*exhaustive {
			expectStates = variants * uint64(*trials) * uint64(*steps)
		}
		stop := startProgress(reg, expectStates)
		defer stop()
	}
	if *listen != "" {
		bound, shutdown, err := obs.ListenMetricsOpts(*listen, reg,
			obs.ListenOptions{Pprof: *pprofFlag})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "serving metrics at http://%s/metrics\n", bound)
		defer shutdown()
	}

	if *exhaustive {
		status := 0
		if *target != "" {
			status = runTargetExhaustive(*target, separability.ExhaustiveOptions{
				MaxViolations: *maxViolations, Workers: *workers, Metrics: reg,
				ChunkSize: *chunk, Checkpoint: *checkpoint, CheckpointEvery: *checkpointEvery,
				ChunkDelay: *throttle,
			}, *shardSpec, *shardOut)
		} else {
			runExhaustive(*workers, reg)
		}
		if *metrics {
			reportMetrics(reg, time.Since(start), *metricsFormat)
		}
		return status
	}

	opt := separability.Options{
		Trials: *trials, StepsPerTrial: *steps, Seed: *seed, CheckScheduling: *sched,
		Workers: *workers, Metrics: reg,
	}

	status := 0
	if *all {
		ok := true
		if r, err := runOne("", true, opt, true, *notranslate, *witnessDir); err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		} else {
			ok = r
		}
		for _, name := range leakNames() {
			r, err := runOne(name, true, opt, false, *notranslate, *witnessDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sepverify:", err)
				return 2
			}
			ok = r && ok
		}
		if !ok {
			status = 1
		}
	} else {
		expectPass := true
		if *leak != "" {
			if _, found := kernel.AllLeaks()[*leak]; !found {
				fmt.Fprintf(os.Stderr, "sepverify: unknown leak %q (try -list)\n", *leak)
				return 2
			}
			expectPass = false
		}
		if *uncut {
			expectPass = false
		}
		ok, err := runOne(*leak, !*uncut, opt, expectPass, *notranslate, *witnessDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		if !ok {
			status = 1
		}
	}

	if *metrics {
		reportMetrics(reg, time.Since(start), *metricsFormat)
	}
	return status
}

func leakNames() []string {
	var names []string
	for n := range kernel.AllLeaks() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// runOne verifies one variant: leakName names a planted leak ("" = the
// honest kernel). With witnessDir set, every distinct violation is
// captured, shrunk and persisted under a per-variant subdirectory.
func runOne(leakName string, cut bool, opt separability.Options, expectPass, notranslate bool, witnessDir string) (bool, error) {
	name := leakName
	if name == "" {
		name = "honest"
	}
	if !cut {
		name += " (uncut)"
	}
	spec := verifysys.SpecFor(leakName, cut, notranslate)
	sys, err := verifysys.FromSpec(spec)
	if err != nil {
		return false, err
	}
	res := separability.CheckRandomized(sys, opt)
	if opt.Metrics != nil {
		// Translation-cache counters from the primary machine (replica
		// machines keep their own; the primary's ratio is representative).
		ts := sys.K.Machine().TranslationStats()
		opt.Metrics.Counter("sep_tc_hits_total").Add(ts.Hits)
		opt.Metrics.Counter("sep_tc_misses_total").Add(ts.Misses)
		opt.Metrics.Counter("sep_tc_invalidations_total").Add(ts.Invalidations)
		opt.Metrics.Counter("sep_tc_fallbacks_total").Add(ts.Fallbacks)
	}
	verdict := "as expected"
	good := res.Passed() == expectPass
	if !good {
		verdict = "UNEXPECTED"
	}
	fmt.Printf("%-22s %-60s [%s]\n", name+":", res.Summary(), verdict)
	if !res.Passed() {
		seen := map[separability.Condition]bool{}
		for _, v := range res.Violations {
			if seen[v.Condition] {
				continue
			}
			seen[v.Condition] = true
			fmt.Printf("    %s\n", v)
		}
	}
	if witnessDir != "" && !res.Passed() {
		sub := leakName
		if sub == "" {
			sub = "honest"
		}
		if !cut {
			sub += "-uncut"
		}
		dir := filepath.Join(witnessDir, sub)
		ws, err := witness.Capture(sys, opt, res, witness.Options{
			Dir: dir, Metrics: opt.Metrics, System: spec})
		if err != nil {
			return false, fmt.Errorf("witness capture: %w", err)
		}
		dropped := 0
		for _, w := range ws {
			dropped += w.OrigSteps - len(w.Steps)
		}
		fmt.Printf("    witnesses: %d captured -> %s (%d ops shrunk away)\n",
			len(ws), dir, dropped)
	}
	return good, nil
}

// startProgress launches a ticker that reports verifier progress on stderr
// every half second; the returned func stops it and prints a final line.
// Lines carry live throughput (states/sec over a ~5s sliding window) and,
// when expectStates > 0, an ETA; exhaustive passes report percent of the
// enumerated space completed instead (from the sep_exh_* counters).
func startProgress(reg *obs.Registry, expectStates uint64) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	type sample struct {
		t      time.Time
		states uint64
	}
	var window []sample
	line := func() {
		now := time.Now()
		if space := reg.CounterValue("sep_exh_space_total"); space > 0 {
			doneU := reg.CounterValue("sep_exh_states_total")
			fmt.Fprintf(os.Stderr, "progress: exhaustive %d/%d units (%.1f%%)\n",
				doneU, space, 100*float64(doneU)/float64(space))
			return
		}
		states := reg.CounterValue("sep_states_checked_total")
		window = append(window, sample{now, states})
		for len(window) > 1 && now.Sub(window[0].t) > 5*time.Second {
			window = window[1:]
		}
		extra := ""
		if len(window) > 1 {
			if dt := now.Sub(window[0].t).Seconds(); dt > 0 {
				rate := float64(states-window[0].states) / dt
				extra = fmt.Sprintf(" (%.0f states/s", rate)
				if rate > 0 && expectStates > states {
					eta := time.Duration(float64(expectStates-states) / rate * float64(time.Second))
					extra += fmt.Sprintf(", ~%s left", eta.Round(time.Second))
				}
				extra += ")"
			}
		}
		fmt.Fprintf(os.Stderr, "progress: trials=%d states=%d violations=%d%s\n",
			reg.CounterValue("sep_trials_total"), states,
			reg.CounterValue("sep_violations_total"), extra)
	}
	go func() {
		defer close(finished)
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				line()
			case <-done:
				line()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// reportMetrics prints the human throughput summary followed by the raw
// registry dump in the requested format.
func reportMetrics(reg *obs.Registry, elapsed time.Duration, format string) {
	sec := elapsed.Seconds()
	trials := reg.CounterValue("sep_trials_total")
	states := reg.CounterValue("sep_states_checked_total")
	fmt.Printf("\nverifier throughput (%.3fs wall):\n", sec)
	fmt.Printf("  trials: %d (%.1f/s)   states: %d (%.0f/s)\n",
		trials, float64(trials)/sec, states, float64(states)/sec)

	fmt.Println("  per-condition checks:")
	for _, cv := range reg.Counters() {
		if strings.HasPrefix(cv.Name, "sep_checks_total{") {
			fmt.Printf("    %-40s %d\n", cv.Name, cv.Value)
		}
	}

	// Per-operation-class attribution (only present when the checked
	// system classifies its operations).
	var perOp []obs.CounterValue
	for _, cv := range reg.Counters() {
		if strings.HasPrefix(cv.Name, "sep_checks_by_op_total{") {
			perOp = append(perOp, cv)
		}
	}
	if len(perOp) > 0 {
		fmt.Println("  per-op checks:")
		for _, cv := range perOp {
			fmt.Printf("    %-40s %d\n", cv.Name, cv.Value)
		}
	}

	// Per-worker lines exist only when the run sharded across workers.
	type worker struct{ trials, states, busyUS uint64 }
	byWorker := map[string]*worker{}
	var ids []string
	get := func(id string) *worker {
		w, ok := byWorker[id]
		if !ok {
			w = &worker{}
			byWorker[id] = w
			ids = append(ids, id)
		}
		return w
	}
	for _, cv := range reg.Counters() {
		name, id, ok := workerCounter(cv.Name)
		if !ok {
			continue
		}
		w := get(id)
		switch name {
		case "sep_worker_trials_total":
			w.trials = cv.Value
		case "sep_worker_states_total":
			w.states = cv.Value
		case "sep_worker_busy_us_total":
			w.busyUS = cv.Value
		}
	}
	if len(ids) > 0 {
		sort.Strings(ids)
		fmt.Println("  per-worker:")
		for _, id := range ids {
			w := byWorker[id]
			busy := float64(w.busyUS) / 1e6
			sps := 0.0
			if busy > 0 {
				sps = float64(w.states) / busy
			}
			fmt.Printf("    worker %-3s trials=%-4d states=%-7d busy=%.3fs (%.0f states/s)\n",
				id, w.trials, w.states, busy, sps)
		}
	}

	fmt.Println("\nmetrics:")
	if format == "json" {
		reg.WriteJSON(os.Stdout)
		fmt.Println()
	} else {
		reg.WritePrometheus(os.Stdout)
	}
}

// workerCounter splits a sep_worker_*{worker="N"} counter name into its
// base name and worker id.
func workerCounter(full string) (name, id string, ok bool) {
	if !strings.HasPrefix(full, "sep_worker_") {
		return "", "", false
	}
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return "", "", false
	}
	name = full[:i]
	rest := full[i:]
	const pre = `{worker="`
	if !strings.HasPrefix(rest, pre) || !strings.HasSuffix(rest, `"}`) {
		return "", "", false
	}
	return name, rest[len(pre) : len(rest)-2], true
}

// parseShard parses a "-shard k/n" spec; empty means the whole space.
func parseShard(s string) (shard, shards int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	ks, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want k/n, e.g. 1/4)", s)
	}
	k, errK := strconv.Atoi(ks)
	n, errN := strconv.Atoi(ns)
	if errK != nil || errN != nil || n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("bad -shard %q (want 0 <= k < n)", s)
	}
	return k, n, nil
}

// runTargetExhaustive sweeps one registered target — or one shard of it —
// optionally persisting the sealed shard artifact and a resumable
// checkpoint. A single-shard run is judged against the target's expected
// verdict; a k/n shard carries no verdict of its own (the leak may live in
// another shard) and exits 0 unless the sweep itself failed.
func runTargetExhaustive(name string, opt separability.ExhaustiveOptions, shardSpec, shardOut string) int {
	t, err := verifysys.FindExhaustiveTarget(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepverify:", err)
		return 2
	}
	opt.Target = name
	if opt.Shard, opt.Shards, err = parseShard(shardSpec); err != nil {
		fmt.Fprintln(os.Stderr, "sepverify:", err)
		return 2
	}
	// Announce an adopted checkpoint before the sweep so supervisors (and
	// the fleet-smoke test) can observe that a restarted worker actually
	// resumed instead of starting over.
	if opt.Checkpoint != "" {
		ck, err := separability.ReadShardCheckpoint(opt.Checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		if ck != nil {
			fmt.Fprintf(os.Stderr, "sepverify: resumed shard %d/%d of %s from %s (frontier %d of chunks [%d,%d))\n",
				ck.Shard, ck.Shards, name, opt.Checkpoint, ck.Frontier, ck.StartChunk, ck.EndChunk)
		}
	}
	sr, err := separability.CheckExhaustiveShard(t.Build(), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepverify:", err)
		return 2
	}
	if shardOut != "" {
		if err := sr.WriteFile(shardOut); err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
	}
	res, err := sr.Result()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepverify:", err)
		return 2
	}
	if opt.Shards > 1 {
		fmt.Printf("%-22s shard %d/%d chunks [%d,%d): %s\n",
			name+":", opt.Shard, opt.Shards, sr.StartChunk, sr.EndChunk, res.Summary())
		return 0
	}
	return printExhaustiveVerdict(name, res, t.Secure)
}

// runMerge folds a complete set of shard-result files into the combined
// verdict, which is identical to an unsharded run of the same target. The
// exit status follows the target's expected verdict when the stamped target
// name is registered here.
func runMerge(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "sepverify: -merge needs shard-result files as arguments")
		return 2
	}
	srs := make([]*separability.ShardResult, 0, len(paths))
	for _, p := range paths {
		sr, err := separability.ReadShardResult(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		srs = append(srs, sr)
	}
	res, err := separability.MergeShards(srs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sepverify:", err)
		return 2
	}
	name := srs[0].Target
	if name == "" {
		fmt.Printf("%-22s %s\n", "merged:", res.Summary())
		return 0
	}
	t, err := verifysys.FindExhaustiveTarget(name)
	if err != nil {
		fmt.Printf("%-22s %s\n", name+":", res.Summary())
		return 0
	}
	return printExhaustiveVerdict(name, res, t.Secure)
}

// printExhaustiveVerdict reports one target's combined result in the same
// shape runOne uses for kernel checks, returning the exit status.
func printExhaustiveVerdict(name string, res *separability.Result, expectSecure bool) int {
	verdict := "as expected"
	good := res.Passed() == expectSecure
	if !good {
		verdict = "UNEXPECTED"
	}
	fmt.Printf("%-22s %-60s [%s]\n", name+":", res.Summary(), verdict)
	if !res.Passed() {
		seen := map[separability.Condition]bool{}
		for _, v := range res.Violations {
			if seen[v.Condition] {
				continue
			}
			seen[v.Condition] = true
			fmt.Printf("    %s\n", v)
		}
	}
	if good {
		return 0
	}
	return 1
}

// runExhaustive performs the explicit-state proofs: the full MiniSUE state
// space and the toy-system calibration suite.
func runExhaustive(workers int, reg *obs.Registry) {
	fmt.Println("exhaustive proof over MiniSUE (a kernel-shaped model, ~74k states x 4 inputs):")
	for _, v := range []minisue.Variant{minisue.Secure, minisue.RegisterLeak,
		minisue.InterruptMisroute, minisue.SharedCell} {
		res := separability.CheckExhaustiveOpt(minisue.New(v),
			separability.ExhaustiveOptions{MaxViolations: 8, Workers: workers, Metrics: reg})
		fmt.Printf("  %-20s %s\n", minisue.VariantName(v)+":", res.Summary())
	}
	fmt.Println("\ncalibration toys (1024 states x 4 inputs, one condition violated each):")
	variants := []separability.ToyVariant{separability.ToySecure,
		separability.ToyCovertStore, separability.ToyDirectWrite,
		separability.ToyInputSnoop, separability.ToyInputCross,
		separability.ToyOutputLeak, separability.ToyNextOpLeak}
	for _, v := range variants {
		res := separability.CheckExhaustiveOpt(separability.NewToySystem(v),
			separability.ExhaustiveOptions{MaxViolations: 4, Workers: workers, Metrics: reg})
		fmt.Printf("  %-20s %s\n", separability.ToyVariantName(v)+":", res.Summary())
	}
}
