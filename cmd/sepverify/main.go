// Command sepverify runs Proof of Separability against SUE-Go kernels.
//
//	sepverify                      # verify the honest kernel (cut channels)
//	sepverify -leak RegisterLeak   # verify a fault-injected kernel
//	sepverify -all                 # sweep: honest + every leak variant
//	sepverify -uncut               # show the configured channels as flows
//
// Observability (see internal/obs):
//
//	sepverify -metrics             # per-condition check counts + worker throughput
//	sepverify -progress            # periodic progress lines on stderr
//	sepverify -cpuprofile cpu.out  # pprof profiles of the verification run
//
// Exit status is 0 when the verification outcome matches expectation
// (honest passes / leaky is caught), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/minisue"
	"repro/internal/obs"
	"repro/internal/separability"
	"repro/internal/verifysys"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the whole run so deferred cleanup (pprof stop, progress
// ticker shutdown) executes before the process exits.
func realMain() int {
	leak := flag.String("leak", "", "inject one named leak (see -list)")
	list := flag.Bool("list", false, "list the available leak names")
	all := flag.Bool("all", false, "sweep the honest kernel and every leak variant")
	uncut := flag.Bool("uncut", false, "verify WITHOUT cutting channels (expected to fail)")
	trials := flag.Int("trials", 10, "random traces to explore")
	steps := flag.Int("steps", 100, "states checked per trace")
	seed := flag.Int64("seed", 1, "exploration seed")
	sched := flag.Bool("sched", true, "include the scheduling-independence extension")
	workers := flag.Int("workers", 0,
		"checker goroutines to shard trials across; 0 = one per CPU core (results are identical for any value)")
	exhaustive := flag.Bool("exhaustive", false,
		"run the exhaustive proofs (MiniSUE + toy calibration) instead of the kernel check")
	metrics := flag.Bool("metrics", false,
		"collect verifier metrics and dump a throughput report after the run")
	notranslate := flag.Bool("notranslate", false,
		"run the SM11 machines without the basic-block translation cache (A/B lever; verdicts are identical either way)")
	metricsFormat := flag.String("metrics-format", "prom",
		"registry dump format with -metrics: prom (Prometheus text) or json")
	progress := flag.Bool("progress", false,
		"print periodic progress lines (trials/states so far) to stderr")
	listen := flag.String("listen", "",
		"serve live verifier counters at http://ADDR/metrics while the run lasts (e.g. :9090)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	if *list {
		for _, name := range leakNames() {
			fmt.Println(name)
		}
		return 0
	}

	if *metricsFormat != "prom" && *metricsFormat != "json" {
		fmt.Fprintf(os.Stderr, "sepverify: unknown -metrics-format %q (want prom or json)\n", *metricsFormat)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sepverify:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sepverify:", err)
			}
		}()
	}

	if *exhaustive {
		runExhaustive(*workers)
		return 0
	}

	// One registry serves -metrics, -progress and the final report; every
	// runOne in an -all sweep accumulates into it.
	var reg *obs.Registry
	if *metrics || *progress || *listen != "" {
		reg = obs.NewRegistry()
	}
	start := time.Now()
	if *progress {
		stop := startProgress(reg)
		defer stop()
	}
	if *listen != "" {
		bound, shutdown, err := obs.ListenMetrics(*listen, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "serving metrics at http://%s/metrics\n", bound)
		defer shutdown()
	}

	opt := separability.Options{
		Trials: *trials, StepsPerTrial: *steps, Seed: *seed, CheckScheduling: *sched,
		Workers: *workers, Metrics: reg,
	}

	status := 0
	if *all {
		ok := true
		if r, err := runOne("honest", kernel.Leaks{}, true, opt, true, *notranslate); err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		} else {
			ok = r
		}
		for _, name := range leakNames() {
			l := kernel.AllLeaks()[name]
			r, err := runOne(name, l, true, opt, false, *notranslate)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sepverify:", err)
				return 2
			}
			ok = r && ok
		}
		if !ok {
			status = 1
		}
	} else {
		leaks := kernel.Leaks{}
		expectPass := true
		name := "honest"
		if *leak != "" {
			l, found := kernel.AllLeaks()[*leak]
			if !found {
				fmt.Fprintf(os.Stderr, "sepverify: unknown leak %q (try -list)\n", *leak)
				return 2
			}
			leaks, expectPass, name = l, false, *leak
		}
		if *uncut {
			expectPass = false
			name += " (uncut)"
		}
		ok, err := runOne(name, leaks, !*uncut, opt, expectPass, *notranslate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sepverify:", err)
			return 2
		}
		if !ok {
			status = 1
		}
	}

	if *metrics {
		reportMetrics(reg, time.Since(start), *metricsFormat)
	}
	return status
}

func leakNames() []string {
	var names []string
	for n := range kernel.AllLeaks() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func runOne(name string, leaks kernel.Leaks, cut bool, opt separability.Options, expectPass, notranslate bool) (bool, error) {
	sys, err := verifysys.Build(verifysys.ProbeFor(leaks), leaks, cut)
	if err != nil {
		return false, err
	}
	if notranslate {
		// Clones inherit the setting, so parallel workers run interpreted too.
		sys.K.Machine().SetTranslation(false)
	}
	res := separability.CheckRandomized(sys, opt)
	if opt.Metrics != nil {
		// Translation-cache counters from the primary machine (replica
		// machines keep their own; the primary's ratio is representative).
		ts := sys.K.Machine().TranslationStats()
		opt.Metrics.Counter("sep_tc_hits_total").Add(ts.Hits)
		opt.Metrics.Counter("sep_tc_misses_total").Add(ts.Misses)
		opt.Metrics.Counter("sep_tc_invalidations_total").Add(ts.Invalidations)
		opt.Metrics.Counter("sep_tc_fallbacks_total").Add(ts.Fallbacks)
	}
	verdict := "as expected"
	good := res.Passed() == expectPass
	if !good {
		verdict = "UNEXPECTED"
	}
	fmt.Printf("%-22s %-60s [%s]\n", name+":", res.Summary(), verdict)
	if !res.Passed() {
		seen := map[separability.Condition]bool{}
		for _, v := range res.Violations {
			if seen[v.Condition] {
				continue
			}
			seen[v.Condition] = true
			fmt.Printf("    %s\n", v)
		}
	}
	return good, nil
}

// startProgress launches a ticker that reports verifier progress on stderr
// every half second; the returned func stops it and prints a final line.
func startProgress(reg *obs.Registry) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	line := func() {
		fmt.Fprintf(os.Stderr, "progress: trials=%d states=%d violations=%d\n",
			reg.CounterValue("sep_trials_total"),
			reg.CounterValue("sep_states_checked_total"),
			reg.CounterValue("sep_violations_total"))
	}
	go func() {
		defer close(finished)
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				line()
			case <-done:
				line()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// reportMetrics prints the human throughput summary followed by the raw
// registry dump in the requested format.
func reportMetrics(reg *obs.Registry, elapsed time.Duration, format string) {
	sec := elapsed.Seconds()
	trials := reg.CounterValue("sep_trials_total")
	states := reg.CounterValue("sep_states_checked_total")
	fmt.Printf("\nverifier throughput (%.3fs wall):\n", sec)
	fmt.Printf("  trials: %d (%.1f/s)   states: %d (%.0f/s)\n",
		trials, float64(trials)/sec, states, float64(states)/sec)

	fmt.Println("  per-condition checks:")
	for _, cv := range reg.Counters() {
		if strings.HasPrefix(cv.Name, "sep_checks_total{") {
			fmt.Printf("    %-40s %d\n", cv.Name, cv.Value)
		}
	}

	// Per-operation-class attribution (only present when the checked
	// system classifies its operations).
	var perOp []obs.CounterValue
	for _, cv := range reg.Counters() {
		if strings.HasPrefix(cv.Name, "sep_checks_by_op_total{") {
			perOp = append(perOp, cv)
		}
	}
	if len(perOp) > 0 {
		fmt.Println("  per-op checks:")
		for _, cv := range perOp {
			fmt.Printf("    %-40s %d\n", cv.Name, cv.Value)
		}
	}

	// Per-worker lines exist only when the run sharded across workers.
	type worker struct{ trials, states, busyUS uint64 }
	byWorker := map[string]*worker{}
	var ids []string
	get := func(id string) *worker {
		w, ok := byWorker[id]
		if !ok {
			w = &worker{}
			byWorker[id] = w
			ids = append(ids, id)
		}
		return w
	}
	for _, cv := range reg.Counters() {
		name, id, ok := workerCounter(cv.Name)
		if !ok {
			continue
		}
		w := get(id)
		switch name {
		case "sep_worker_trials_total":
			w.trials = cv.Value
		case "sep_worker_states_total":
			w.states = cv.Value
		case "sep_worker_busy_us_total":
			w.busyUS = cv.Value
		}
	}
	if len(ids) > 0 {
		sort.Strings(ids)
		fmt.Println("  per-worker:")
		for _, id := range ids {
			w := byWorker[id]
			busy := float64(w.busyUS) / 1e6
			sps := 0.0
			if busy > 0 {
				sps = float64(w.states) / busy
			}
			fmt.Printf("    worker %-3s trials=%-4d states=%-7d busy=%.3fs (%.0f states/s)\n",
				id, w.trials, w.states, busy, sps)
		}
	}

	fmt.Println("\nmetrics:")
	if format == "json" {
		reg.WriteJSON(os.Stdout)
		fmt.Println()
	} else {
		reg.WritePrometheus(os.Stdout)
	}
}

// workerCounter splits a sep_worker_*{worker="N"} counter name into its
// base name and worker id.
func workerCounter(full string) (name, id string, ok bool) {
	if !strings.HasPrefix(full, "sep_worker_") {
		return "", "", false
	}
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return "", "", false
	}
	name = full[:i]
	rest := full[i:]
	const pre = `{worker="`
	if !strings.HasPrefix(rest, pre) || !strings.HasSuffix(rest, `"}`) {
		return "", "", false
	}
	return name, rest[len(pre) : len(rest)-2], true
}

// runExhaustive performs the explicit-state proofs: the full MiniSUE state
// space and the toy-system calibration suite.
func runExhaustive(workers int) {
	fmt.Println("exhaustive proof over MiniSUE (a kernel-shaped model, ~74k states x 4 inputs):")
	for _, v := range []minisue.Variant{minisue.Secure, minisue.RegisterLeak,
		minisue.InterruptMisroute, minisue.SharedCell} {
		res := separability.CheckExhaustiveWorkers(minisue.New(v), 8, workers)
		fmt.Printf("  %-20s %s\n", minisue.VariantName(v)+":", res.Summary())
	}
	fmt.Println("\ncalibration toys (1024 states x 4 inputs, one condition violated each):")
	variants := []separability.ToyVariant{separability.ToySecure,
		separability.ToyCovertStore, separability.ToyDirectWrite,
		separability.ToyInputSnoop, separability.ToyInputCross,
		separability.ToyOutputLeak, separability.ToyNextOpLeak}
	for _, v := range variants {
		res := separability.CheckExhaustiveWorkers(separability.NewToySystem(v), 4, workers)
		fmt.Printf("  %-20s %s\n", separability.ToyVariantName(v)+":", res.Summary())
	}
}
