package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastFlags keeps CLI tests quick: the same reduced parameters the watch
// package tests validated against every planted leak.
func fastFlags(dir string) []string {
	return []string{"-dir", dir, "-seed", "7", "-trials", "3", "-steps", "50",
		"-tracesteps", "120", "-workers", "1", "-build", "t1"}
}

func runCLI(t *testing.T, wantExit int, args ...string) string {
	t.Helper()
	var out, errw bytes.Buffer
	got := run(args, &out, &errw)
	if got != wantExit {
		t.Fatalf("exit = %d, want %d\nargs: %v\nstdout:\n%s\nstderr:\n%s",
			got, wantExit, args, out.String(), errw.String())
	}
	return out.String()
}

// The end-to-end drift story through the CLI: verify, re-verify
// (idempotent), silently flip the spec (drift caught and classified),
// then read it all back via history and diff.
func TestCheckHistoryDiffFlow(t *testing.T) {
	dir := t.TempDir()

	out := runCLI(t, 0, append([]string{"check"}, append(fastFlags(dir), "honest")...)...)
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "seq=1") {
		t.Fatalf("first check:\n%s", out)
	}
	digestRe := regexp.MustCompile(`digest=([0-9a-f]{16})`)
	m := digestRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no digest in check output:\n%s", out)
	}
	digest1 := m[1]

	// Idempotence: same deployment, new build record, identical digest, no
	// drift, exit 0.
	out = runCLI(t, 0, append([]string{"check"}, append(fastFlags(dir), "honest")...)...)
	if !strings.Contains(out, "seq=2") || !strings.Contains(out, "drift=0") {
		t.Fatalf("re-check:\n%s", out)
	}
	if m := digestRe.FindStringSubmatch(out); m == nil || m[1] != digest1 {
		t.Fatalf("unchanged deployment changed digest:\n%s", out)
	}

	// The silent spec change: drift classified, exit 2.
	out = runCLI(t, 2, append([]string{"check", "-override-leak", "SharedScratch"},
		append(fastFlags(dir), "honest")...)...)
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("planted leak passed:\n%s", out)
	}
	if c := strings.Count(out, "drift verdict-flip"); c != 1 {
		t.Fatalf("verdict flips = %d, want 1:\n%s", c, out)
	}
	if c := strings.Count(out, "drift digest-drift"); c != 1 {
		t.Fatalf("digest drifts = %d, want 1:\n%s", c, out)
	}
	if !strings.Contains(out, "diverges at event") {
		t.Fatalf("first divergent event not located:\n%s", out)
	}

	out = runCLI(t, 0, "history", "-dir", dir)
	if !strings.Contains(out, "honest: 3 builds") {
		t.Fatalf("history:\n%s", out)
	}
	if c := strings.Count(out, "drift verdict-flip"); c != 1 {
		t.Fatalf("history verdict flips = %d, want 1:\n%s", c, out)
	}

	// diff of the two newest records re-derives the drift; exit 1.
	out = runCLI(t, 1, "diff", "-dir", dir, "-deployment", "honest")
	if !strings.Contains(out, "drift verdict-flip") || !strings.Contains(out, "drift digest-drift") {
		t.Fatalf("diff:\n%s", out)
	}
	// The first two builds are identical: no drift, exit 0.
	out = runCLI(t, 0, "diff", "-dir", dir, "-deployment", "honest", "-a", "1", "-b", "2")
	if !strings.Contains(out, "no drift") {
		t.Fatalf("identical-pair diff:\n%s", out)
	}

	// JSON report round-trips.
	out = runCLI(t, 1, "diff", "-dir", dir, "-deployment", "honest", "-format", "json")
	var report struct {
		Deployment string `json:"deployment"`
		A, B       string
		Drift      []struct {
			Kind      string `json:"kind"`
			Regime    int    `json:"regime"`
			DivergeAt int    `json:"divergeAt"`
		} `json:"drift"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("diff -format json: %v\n%s", err, out)
	}
	if report.Deployment != "honest" || len(report.Drift) < 2 {
		t.Fatalf("json report: %+v", report)
	}
	// Exactly one flip and one digest drift; the leak's probe also stops
	// using its channel, which classifies as a channel regression too.
	kinds := map[string]int{}
	for _, d := range report.Drift {
		kinds[d.Kind]++
	}
	if kinds["verdict-flip"] != 1 || kinds["digest-drift"] != 1 {
		t.Fatalf("json drift kinds: %v", kinds)
	}
}

func TestCheckWritesEventLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.jsonl")
	runCLI(t, 0, append([]string{"check", "-log", logPath},
		append(fastFlags(dir), "honest")...)...)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var co struct {
		Deployment string `json:"deployment"`
		Passed     bool   `json:"passed"`
		Build      string `json:"build"`
	}
	line := strings.SplitN(strings.TrimSpace(string(b)), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &co); err != nil {
		t.Fatalf("event log line: %v\n%s", err, line)
	}
	if co.Deployment != "honest" || !co.Passed || !strings.Contains(co.Build, "t1") {
		t.Fatalf("event log content: %+v", co)
	}
}

func TestServeCyclesAndEndpoints(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var buf bytes.Buffer
	out := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	done := make(chan int, 1)
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-cycles", "2",
		"-interval", "100ms", "-deployments", "honest,toy-secure"}, fastFlags(dir)...)
	go func() { done <- run(args, out, io.Discard) }()

	// Wait for the server line, then hit /status and /metrics while cycles
	// run.
	addrRe := regexp.MustCompile(`serving http://([^/]+)/status`)
	var addr string
	for i := 0; i < 100; i++ {
		mu.Lock()
		m := addrRe.FindStringSubmatch(buf.String())
		mu.Unlock()
		if m != nil {
			addr = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("serve never announced its address")
	}
	deadline := time.Now().Add(5 * time.Second)
	var status struct {
		Deployments []struct {
			Name    string `json:"name"`
			Builds  int    `json:"builds"`
			Healthy bool   `json:"healthy"`
		} `json:"deployments"`
	}
	for {
		resp, err := http.Get("http://" + addr + "/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&status)
			resp.Body.Close()
		}
		if err == nil && len(status.Deployments) == 2 && status.Deployments[0].Builds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/status never became ready: %v %+v", err, status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, ds := range status.Deployments {
		if !ds.Healthy {
			t.Errorf("deployment %s unhealthy in /status", ds.Name)
		}
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		"sep_watch_records_total",
		`sep_watch_last_verdict{deployment="honest"} 1`,
		`sep_watch_ledger_records{deployment="toy-secure"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics misses %q", want)
		}
	}

	if code := <-done; code != 0 {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("serve exited %d:\n%s", code, buf.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "cycle 2:") {
		t.Fatalf("serve did not run 2 cycles:\n%s", buf.String())
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	runCLI(t, 2, "bogus")
	runCLI(t, 2)
	runCLI(t, 0, "help")
	runCLI(t, 2, "check", "-dir", dir, "nosuch-deployment")
	runCLI(t, 2, "check", "-dir", dir, "-deployments", "nosuch")
	runCLI(t, 2, "diff", "-dir", dir)
	runCLI(t, 2, "diff", "-dir", dir, "-deployment", "honest") // no ledger yet
	runCLI(t, 2, "diff", "-dir", dir, "-deployment", "honest", "-format", "bogus")
	runCLI(t, 2, "history", "-dir", filepath.Join(dir, "nosuch"))
	// Exhaustive deployments have no spec to override.
	runCLI(t, 2, append([]string{"check", "-override-leak", "SharedScratch"},
		append(fastFlags(dir), "toy-secure")...)...)
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
