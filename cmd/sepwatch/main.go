// Command sepwatch continuously re-verifies a registry of named kernel
// deployments and maintains a tamper-evident drift ledger per deployment:
// the continuous-deployment answer to "is the kernel we are running today
// still the kernel we verified?".
//
//	sepwatch serve -dir watch/ -addr :9190 -interval 30s
//	    run verification cycles forever (-cycles N to stop after N, as the
//	    CI smoke does), serving /status JSON and /metrics beside the
//	    ledgers. Every cycle re-verifies each deployment from a fresh
//	    build, captures the canonical trace, and appends a content-
//	    addressed, hash-chained build record; consecutive records are
//	    diffed down to the first divergent event and classified
//	    (verdict-flip, digest-drift, channel-regression).
//
//	sepwatch check [-override-leak L] [-override-cut] [deployment...]
//	    one-shot verification of the named deployments (default: the full
//	    spec registry), appending one record each. The -override flags
//	    verify the deployment with a silently modified spec under its
//	    original name — a controlled reproduction of a deployment changing
//	    under an unchanged label, which the next ledger diff then catches.
//	    Exits 2 if any appended record classifies drift.
//
//	sepwatch history [-deployment D]
//	    print each deployment's validated ledger, one line per build
//	    record (chain-verified; a tampered ledger refuses to decode).
//
//	sepwatch diff -deployment D [-a SEQ] [-b SEQ]
//	    re-classify drift between two records of a deployment's ledger
//	    (default: the two newest), reloading their trace blobs to locate
//	    the first divergent event. Exits 1 if the pair drifted.
//
// All subcommands take -dir (the watch directory, default "watch") and
// the verification knobs -seed/-trials/-steps/-tracesteps/-workers.
// -build LABEL stamps records from unstamped binaries; otherwise the VCS
// revision embedded by the Go toolchain identifies the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/watch"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errw io.Writer) int {
	if len(args) == 0 {
		usage(errw)
		return 2
	}
	switch args[0] {
	case "serve":
		return cmdServe(args[1:], out, errw)
	case "check":
		return cmdCheck(args[1:], out, errw)
	case "history":
		return cmdHistory(args[1:], out, errw)
	case "diff":
		return cmdDiff(args[1:], out, errw)
	case "-h", "-help", "--help", "help":
		usage(errw)
		return 0
	}
	fmt.Fprintf(errw, "sepwatch: unknown subcommand %q\n", args[0])
	usage(errw)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  sepwatch serve   [-dir D] [-addr A] [-interval T] [-cycles N] [-deployments a,b] [-exhaustive] [-log F] [verification flags]
  sepwatch check   [-dir D] [-override-leak L] [-override-cut] [-log F] [verification flags] [deployment...]
  sepwatch history [-dir D] [-deployment D]
  sepwatch diff    [-dir D] -deployment D [-a SEQ] [-b SEQ]
verification flags: -seed S -trials N -steps N -tracesteps N -workers N -shards N -nosched -build LABEL
`)
}

// watchFlags wires the shared Config knobs into a FlagSet.
type watchFlags struct {
	dir         *string
	seed        *int64
	trials      *int
	steps       *int
	traceSteps  *int
	workers     *int
	shards      *int
	nosched     *bool
	build       *string
	deployments *string
	exhaustive  *bool
	logPath     *string
}

func addWatchFlags(fs *flag.FlagSet) *watchFlags {
	return &watchFlags{
		dir:         fs.String("dir", "watch", "watch directory (one ledger per deployment)"),
		seed:        fs.Int64("seed", 0, "checker and trace seed (0 = default; fixed across cycles by design)"),
		trials:      fs.Int("trials", 0, "randomized trials per deployment (0 = default)"),
		steps:       fs.Int("steps", 0, "states checked per trial (0 = default)"),
		traceSteps:  fs.Int("tracesteps", 0, "canonical trace walk length (0 = default)"),
		workers:     fs.Int("workers", 0, "checker worker goroutines (0 = one per core)"),
		shards:      fs.Int("shards", 0, "shards per exhaustive sweep (0 = default)"),
		nosched:     fs.Bool("nosched", false, "disable the scheduling-independence extension"),
		build:       fs.String("build", "", "build label stamped into records (default: VCS revision)"),
		deployments: fs.String("deployments", "", "comma-separated deployment names (default: full spec registry)"),
		exhaustive:  fs.Bool("exhaustive", false, "also watch the enumerable exhaustive targets"),
		logPath:     fs.String("log", "", "append JSONL event log to this file"),
	}
}

// config resolves flags into a watch.Config plus a close function for the
// log file.
func (wf *watchFlags) config(errw io.Writer) (watch.Config, func(), bool) {
	cfg := watch.Config{
		Dir:  *wf.dir,
		Seed: *wf.seed, Trials: *wf.trials, StepsPerTrial: *wf.steps,
		TraceSteps: *wf.traceSteps, Workers: *wf.workers,
		ExhaustiveShards: *wf.shards, NoScheduling: *wf.nosched,
		Build:   watch.CurrentBuild(*wf.build),
		Metrics: obs.NewRegistry(),
	}
	closeLog := func() {}
	if *wf.logPath != "" {
		f, err := os.OpenFile(*wf.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(errw, "sepwatch:", err)
			return cfg, closeLog, false
		}
		cfg.Log = f
		closeLog = func() { f.Close() }
	}
	if *wf.deployments != "" {
		for _, name := range strings.Split(*wf.deployments, ",") {
			d, ok := watch.FindDeployment(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(errw, "sepwatch: unknown deployment %q\n", name)
				closeLog()
				return cfg, func() {}, false
			}
			cfg.Deployments = append(cfg.Deployments, d)
		}
	} else {
		cfg.Deployments = watch.Deployments()
		if *wf.exhaustive {
			cfg.Deployments = append(cfg.Deployments, watch.ExhaustiveDeployments()...)
		}
	}
	return cfg, closeLog, true
}

func cmdServe(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sepwatch serve", flag.ContinueOnError)
	fs.SetOutput(errw)
	wf := addWatchFlags(fs)
	addr := fs.String("addr", "127.0.0.1:0", "serve /status and /metrics on this address ('' = no server)")
	interval := fs.Duration("interval", 30*time.Second, "pause between cycles")
	cycles := fs.Int("cycles", 0, "stop after this many cycles (0 = run forever)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(errw, "sepwatch serve: unexpected arguments; use -deployments")
		return 2
	}
	cfg, closeLog, ok := wf.config(errw)
	if !ok {
		return 2
	}
	defer closeLog()
	w := watch.New(cfg)

	if *addr != "" {
		bound, shutdown, err := obs.ListenMetricsOpts(*addr, cfg.Metrics, obs.ListenOptions{
			Handlers: map[string]http.Handler{"/status": w.StatusHandler()},
		})
		if err != nil {
			fmt.Fprintln(errw, "sepwatch:", err)
			return 2
		}
		defer shutdown()
		fmt.Fprintf(out, "sepwatch: serving http://%s/status and /metrics\n", bound)
	}

	fmt.Fprintf(out, "sepwatch: watching %d deployments in %s (build %s)\n",
		len(cfg.Deployments), cfg.Dir, cfg.Build)
	for n := 1; ; n++ {
		res := w.RunCycle()
		fmt.Fprintf(out, "cycle %d: %d deployments, %d drift, %d verdict flips, %d errors\n",
			res.Cycle, res.Deployments, res.Drift, res.VerdictFlips, res.Errors)
		if *cycles > 0 && n >= *cycles {
			break
		}
		time.Sleep(*interval)
	}
	return 0
}

func cmdCheck(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sepwatch check", flag.ContinueOnError)
	fs.SetOutput(errw)
	wf := addWatchFlags(fs)
	overrideLeak := fs.String("override-leak", "", "verify with this leak silently planted in the spec")
	overrideCut := fs.Bool("override-cut", false, "verify with the spec's channel cut silently toggled")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg, closeLog, ok := wf.config(errw)
	if !ok {
		return 2
	}
	defer closeLog()

	targets := cfg.Deployments
	if fs.NArg() > 0 {
		targets = nil
		for _, name := range fs.Args() {
			d, ok := watch.FindDeployment(name)
			if !ok {
				fmt.Fprintf(errw, "sepwatch: unknown deployment %q\n", name)
				return 2
			}
			targets = append(targets, d)
		}
	}
	w := watch.New(cfg)

	drifted := false
	for _, d := range targets {
		if *overrideLeak != "" || *overrideCut {
			if d.Target != "" {
				fmt.Fprintf(errw, "sepwatch: cannot override the spec of exhaustive deployment %q\n", d.Name)
				return 2
			}
			// The silent change under an unchanged name: the ledger keeps
			// recording under d.Name while the verified system differs.
			spec := d.Spec
			if *overrideLeak != "" {
				spec.Leak = *overrideLeak
			}
			if *overrideCut {
				spec.Cut = !spec.Cut
			}
			d.Spec = spec
		}
		rec, err := w.CheckDeployment(d)
		if err != nil {
			fmt.Fprintln(errw, "sepwatch:", err)
			return 2
		}
		fmt.Fprintln(out, recordLine(rec))
		for _, dr := range rec.Drift {
			drifted = true
			fmt.Fprintf(out, "  drift %s\n", dr)
		}
	}
	if drifted {
		return 2
	}
	return 0
}

func cmdHistory(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sepwatch history", flag.ContinueOnError)
	fs.SetOutput(errw)
	dir := fs.String("dir", "watch", "watch directory")
	deployment := fs.String("deployment", "", "show only this deployment's ledger")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	names := fs.Args()
	if *deployment != "" {
		names = append(names, *deployment)
	}
	if len(names) == 0 {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			fmt.Fprintln(errw, "sepwatch:", err)
			return 2
		}
		for _, e := range entries {
			if e.IsDir() {
				names = append(names, e.Name())
			}
		}
	}
	for _, name := range names {
		led, err := watch.OpenLedger(*dir, name)
		if err != nil {
			fmt.Fprintln(errw, "sepwatch:", err)
			return 2
		}
		recs, err := led.Records()
		if err != nil {
			fmt.Fprintln(errw, "sepwatch:", err)
			return 2
		}
		fmt.Fprintf(out, "%s: %d builds\n", name, len(recs))
		for _, r := range recs {
			fmt.Fprintf(out, "  %s\n", recordLine(r))
			for _, dr := range r.Drift {
				fmt.Fprintf(out, "    drift %s\n", dr)
			}
		}
	}
	return 0
}

func recordLine(r *watch.Record) string {
	verdict := "PASS"
	if !r.Passed {
		verdict = fmt.Sprintf("FAIL(%d violations)", len(r.Violations))
	}
	mode := fmt.Sprintf("randomized %dx%d", r.Trials, r.Steps)
	if r.Exhaustive != "" {
		mode = fmt.Sprintf("exhaustive %s/%d shards", r.Exhaustive, r.Shards)
	}
	return fmt.Sprintf("%s seq=%d id=%s %s %s digest=%s drift=%d build=%s",
		r.Deployment, r.Seq, r.ID, verdict, mode, r.TraceDigest, len(r.Drift), r.Build)
}

func cmdDiff(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("sepwatch diff", flag.ContinueOnError)
	fs.SetOutput(errw)
	dir := fs.String("dir", "watch", "watch directory")
	deployment := fs.String("deployment", "", "deployment ledger to diff (required)")
	aSeq := fs.Int("a", 0, "older record sequence number (0 = second newest)")
	bSeq := fs.Int("b", 0, "newer record sequence number (0 = newest)")
	format := fs.String("format", "text", "report format: text or json")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *deployment == "" && fs.NArg() == 1 {
		*deployment = fs.Arg(0)
	}
	if *deployment == "" {
		fmt.Fprintln(errw, "sepwatch diff: -deployment required")
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(errw, "sepwatch diff: unknown -format %q (want text or json)\n", *format)
		return 2
	}
	led, err := watch.OpenLedger(*dir, *deployment)
	if err != nil {
		fmt.Fprintln(errw, "sepwatch:", err)
		return 2
	}
	recs, err := led.Records()
	if err != nil {
		fmt.Fprintln(errw, "sepwatch:", err)
		return 2
	}
	if len(recs) < 2 {
		fmt.Fprintf(errw, "sepwatch diff: %s has %d builds; need two to diff\n", *deployment, len(recs))
		return 2
	}
	pick := func(seq, dflt int) (*watch.Record, error) {
		if seq == 0 {
			seq = dflt
		}
		if seq < 1 || seq > len(recs) {
			return nil, fmt.Errorf("sepwatch diff: seq %d out of range 1..%d", seq, len(recs))
		}
		return recs[seq-1], nil
	}
	a, err := pick(*aSeq, len(recs)-1)
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	b, err := pick(*bSeq, len(recs))
	if err != nil {
		fmt.Fprintln(errw, err)
		return 2
	}
	aTrace, _ := led.LoadTrace(a)
	bTrace, _ := led.LoadTrace(b)
	drift := watch.ClassifyDrift(a, b, aTrace, bTrace)

	if *format == "json" {
		report := struct {
			Deployment string        `json:"deployment"`
			A          string        `json:"a"`
			B          string        `json:"b"`
			Drift      []watch.Drift `json:"drift"`
		}{Deployment: *deployment, A: a.ID, B: b.ID, Drift: drift}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(errw, "sepwatch:", err)
			return 2
		}
	} else {
		fmt.Fprintf(out, "%s: seq %d (%s, build %s) -> seq %d (%s, build %s)\n",
			*deployment, a.Seq, a.ID, a.Build, b.Seq, b.ID, b.Build)
		if len(drift) == 0 {
			fmt.Fprintln(out, "no drift")
		}
		for _, dr := range drift {
			fmt.Fprintf(out, "  drift %s\n", dr)
		}
	}
	if len(drift) > 0 {
		return 1
	}
	return 0
}
