package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/asm"
	"repro/internal/ifa"
	"repro/internal/kernel"
	"repro/internal/staticflow"
)

// The -compare mode runs the structured-IR certifier and the machine-level
// analyzer (package staticflow) over corresponding subjects and prints the
// agreement matrix. The two operate on different artefacts — hand-written
// IR models versus genuinely assembled SM11 programs — so agreement is
// evidence that the §4 verdicts are properties of syntactic certification
// itself, not of one encoding of it.

// irAnalogues are structured-IR renderings of the sample regime programs.
// Channel endpoints appear as own-coloured variables (x1, x2): the cut
// aliases, exactly how staticflow treats SEND/RECV.
var irAnalogues = map[string]string{
	"counter": `
program counter
var r2, out : RED
r2 := 0
while 1 {
    r2 := r2 + 1
    out := r2
}
`,
	"echo": `
program echo
var rdata, xdata, r1 : RED
while 1 {
    r1 := rdata
    xdata := r1
}
`,
	"chanpair": `
program chanpair
var r2, x1, x2, out : RED
r2 := 0
while 1 {
    r2 := r2 + 1
    x1 := r2
    out := x2
}
`,
}

type compareRow struct {
	subject  string
	ir, mach string // verdicts
}

func (r compareRow) agree() bool { return r.ir == r.mach }

// compareVerdicts builds the agreement matrix; programsDir locates the
// assembly sources for the machine-level half.
func compareVerdicts(programsDir string) ([]compareRow, error) {
	iso := ifa.Isolation(ifa.SwapColours...)
	colours := []staticflow.Colour{"RED", "BLACK"}

	machSwap, err := staticflow.AnalyzeKernelSwap(colours, 0, 1)
	if err != nil {
		return nil, err
	}
	machSpec, err := staticflow.AnalyzeKernelSwapAbstract(colours, 0, 1)
	if err != nil {
		return nil, err
	}
	rows := []compareRow{
		{"swap-implementation", verdict(ifa.Certify(ifa.SwapImplementation(6), iso).Certified()), machSwap.Verdict()},
		{"swap-high-level-spec", verdict(ifa.Certify(ifa.SwapHighLevelSpec(6), iso).Certified()), machSpec.Verdict()},
	}

	for _, name := range []string{"counter", "echo", "chanpair"} {
		prog, err := ifa.Parse(irAnalogues[name])
		if err != nil {
			return nil, fmt.Errorf("IR analogue %s: %w", name, err)
		}
		irRep := ifa.Certify(prog, iso)

		src, err := os.ReadFile(filepath.Join(programsDir, name+".s"))
		if err != nil {
			return nil, err
		}
		img, err := asm.Assemble(kernel.Prelude + string(src))
		if err != nil {
			return nil, fmt.Errorf("%s.s: %w", name, err)
		}
		spec := staticflow.ProgramSpec(name, "RED", []staticflow.Colour{"BLACK"}, 0x1000)
		machRep, err := staticflow.Analyze(img, spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, compareRow{name, verdict(irRep.Certified()), machRep.Verdict()})
	}

	// The SNFE censor designs, IR model vs assembled fixture. The strict
	// censor is the interesting row: its machine rendering spills HIGH and
	// LOW words on the same stack, which only the frame-offset stack cells
	// keep apart — the coarse analyzer disagreed with the IR verdict here.
	censors := []struct {
		name string
		ir   *ifa.Program
	}{
		{"censor_format", ifa.CensorFormatSpec()},
		{"censor_canon", ifa.CensorCanonSpec()},
		{"censor_strict", ifa.CensorStrictSpec()},
	}
	two := ifa.TwoPoint()
	for _, c := range censors {
		irRep := ifa.Certify(c.ir, two)
		src, err := os.ReadFile(filepath.Join(programsDir, c.name+".s"))
		if err != nil {
			return nil, err
		}
		img, err := asm.Assemble(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s.s: %w", c.name, err)
		}
		machRep, err := staticflow.Analyze(img, staticflow.CensorSpec(c.name))
		if err != nil {
			return nil, err
		}
		rows = append(rows, compareRow{c.name, verdict(irRep.Certified()), machRep.Verdict()})
	}
	return rows, nil
}

func verdict(certified bool) string {
	if certified {
		return "CERTIFIED"
	}
	return "REJECTED"
}

// runCompare prints the matrix; the exit status is 0 when the analyzers
// agree on every subject.
func runCompare(out io.Writer, programsDir string) int {
	rows, err := compareVerdicts(programsDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifacheck:", err)
		return 2
	}
	fmt.Fprintln(out, "agreement matrix (structured-IR certifier vs machine-level analyzer):")
	fmt.Fprintf(out, "  %-22s %-14s %-14s %s\n", "subject", "structured IR", "machine level", "agree")
	exit := 0
	for _, r := range rows {
		mark := "yes"
		if !r.agree() {
			mark = "NO"
			exit = 1
		}
		fmt.Fprintf(out, "  %-22s %-14s %-14s %s\n", r.subject, r.ir, r.mach, mark)
	}
	return exit
}
