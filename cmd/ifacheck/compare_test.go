package main

import (
	"bytes"
	"path/filepath"
	"testing"
)

// The two analyzers must agree on every subject in the matrix: both reject
// the SWAP implementation, both certify the abstract specification and the
// three sample regime programs.
func TestCompareAgreement(t *testing.T) {
	rows, err := compareVerdicts(filepath.Join("..", "..", "programs"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"swap-implementation":  "REJECTED",
		"swap-high-level-spec": "CERTIFIED",
		"counter":              "CERTIFIED",
		"echo":                 "CERTIFIED",
		"chanpair":             "CERTIFIED",
		"censor_format":        "REJECTED",
		"censor_canon":         "REJECTED",
		"censor_strict":        "CERTIFIED",
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if !r.agree() {
			t.Errorf("%s: analyzers disagree (IR %s, machine %s)", r.subject, r.ir, r.mach)
		}
		if w := want[r.subject]; r.mach != w {
			t.Errorf("%s: verdict %s, want %s", r.subject, r.mach, w)
		}
	}

	var buf bytes.Buffer
	if exit := runCompare(&buf, filepath.Join("..", "..", "programs")); exit != 0 {
		t.Errorf("runCompare exit = %d:\n%s", exit, buf.String())
	}
}
