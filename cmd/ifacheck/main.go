// Command ifacheck reproduces the paper's section-4 argument about
// Information Flow Analysis: it certifies the canonical kernel and
// component specifications and prints the verdicts side by side.
//
// The expected output shape is the paper's:
//
//   - the SWAP *implementation* is rejected (BLACK values reach the
//     RED-classified shared registers), although the operation is
//     manifestly secure — run `sepverify` for the proof-of-separability
//     verdict on the same kernel logic;
//   - the SWAP *high-level specification* (per-regime registers) is
//     certified, silently shifting the burden to an unperformed
//     implementation-correctness proof;
//   - the spooler's cleanup is rejected (the *-property violation that
//     forces "trusted process" status in kernelized systems);
//   - the file-server specification is certified (servers are the
//     "ordinary programs" Feiertag-style models fit).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ifa"
)

func main() {
	verbose := flag.Bool("v", false, "print each analysed program")
	regs := flag.Int("regs", 6, "number of general registers in the SWAP model")
	lattice := flag.String("lattice", "two-point",
		"lattice for -f files: two-point, or isolation:C1,C2,...")
	compare := flag.Bool("compare", false,
		"print the structured-IR vs machine-level analyzer agreement matrix")
	programsDir := flag.String("programs", "programs",
		"directory holding the sample .s programs (used by -compare)")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(os.Stdout, *programsDir))
	}

	iso := ifa.Isolation(ifa.SwapColours...)
	two := ifa.TwoPoint()

	// With file arguments, certify those instead of the built-in canon.
	if flag.NArg() > 0 {
		l := ifa.Lattice(two)
		if strings.HasPrefix(*lattice, "isolation:") {
			var atoms []ifa.Class
			for _, a := range strings.Split(strings.TrimPrefix(*lattice, "isolation:"), ",") {
				atoms = append(atoms, ifa.Class(strings.TrimSpace(a)))
			}
			l = ifa.Isolation(atoms...)
		}
		exit := 0
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ifacheck:", err)
				os.Exit(2)
			}
			prog, err := ifa.Parse(string(src))
			if err != nil {
				fmt.Fprintln(os.Stderr, "ifacheck:", err)
				os.Exit(2)
			}
			if *verbose {
				fmt.Println(prog)
			}
			rep := ifa.Certify(prog, l)
			fmt.Println(rep.Summary())
			for _, v := range rep.Violations {
				fmt.Printf("    %s\n", v)
			}
			if !rep.Certified() {
				exit = 1
			}
		}
		os.Exit(exit)
	}

	cases := []struct {
		prog    *ifa.Program
		lattice ifa.Lattice
		expect  string
	}{
		{ifa.SwapImplementation(*regs), iso, "REJECTED — the paper's point: IFA is syntactic"},
		{ifa.SwapHighLevelSpec(*regs), iso, "CERTIFIED — burden moved to refinement proof"},
		{ifa.SpoolerTrusted(), two, "REJECTED — why spoolers become trusted processes"},
		{ifa.FileServerSpec(), two, "CERTIFIED — servers fit the model"},
		{ifa.CensorFormatSpec(), two, "REJECTED — the length field crosses the bypass"},
		{ifa.CensorCanonSpec(), two, "REJECTED — quantized length is still a flow (measured ≈ 0, proven > 0)"},
		{ifa.CensorStrictSpec(), two, "CERTIFIED — the provably flow-free censor"},
	}
	for _, c := range cases {
		rep := ifa.Certify(c.prog, c.lattice)
		if *verbose {
			fmt.Println(c.prog)
		}
		fmt.Printf("%-28s %s\n", c.prog.Name+":", rep.Summary())
		fmt.Printf("%-28s expected: %s\n", "", c.expect)
		for _, v := range rep.Violations {
			fmt.Printf("    %s\n", v)
		}
		fmt.Println()
	}
}
