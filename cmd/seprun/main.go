// Command seprun boots a SUE-Go separation-kernel system and runs it.
//
// With no arguments it runs a built-in two-regime demo (a sender and a
// receiver joined by one kernel channel). Given assembly files, it boots
// one regime per file, in argument order, optionally joined by channels:
//
//	seprun -steps 20000 red.s black.s -chan 0:1 -chan 1:0
//
// Each -chan FROM:TO adds a unidirectional channel between regime indexes.
// The kernel ABI prelude (TRAP numbers, device segment addresses) is
// prepended to every file automatically.
//
// Observability (see internal/obs):
//
//	seprun -trace out.jsonl                     # JSONL event trace
//	seprun -trace -                             # JSONL to stdout (report → stderr)
//	seprun -trace out.json -trace-format chrome # open in chrome://tracing
//	seprun -itrace 20                           # print first 20 instructions
//	seprun -metrics                             # Prometheus-text kernel counters
//
// Every run ends with a per-regime exit report: instructions executed,
// syscalls, channel traffic, final state and any fault reason. With
// -trace - the report moves to stderr, so `seprun -trace - | septrace
// covert -` pipes a clean event stream.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
)

type chanFlags []string

func (c *chanFlags) String() string { return strings.Join(*c, ",") }

func (c *chanFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

const demoSender = `
	.org 0x40
start:
	MOV #1, R2
loop:
	MOV #0, R0
	MOV R2, R1
	TRAP #SEND
	ADD #1, R2
	CMP #11, R2
	BEQ done
	TRAP #SWAP
	BR loop
done:
	TRAP #HALTME
`

const demoReceiver = `
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV #0, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	ADD R1, R4
	MOV R4, @0x20
	BR loop
yield:
	TRAP #SWAP
	BR loop
`

func main() {
	steps := flag.Int("steps", 50000, "maximum machine cycles to run")
	cut := flag.Bool("cut", false, "apply the channel-cutting transformation")
	itrace := flag.Int("itrace", 0, "print the first N executed instructions")
	slice := flag.Int("slice", 0, "fixed time slice in cycles (0 = run until SWAP)")
	tracePath := flag.String("trace", "", "write a kernel event trace to this file")
	traceFormat := flag.String("trace-format", "jsonl",
		"trace file format: jsonl (one event per line) or chrome (trace_event for chrome://tracing / Perfetto)")
	metrics := flag.Bool("metrics", false, "dump kernel activity counters in Prometheus text format after the run")
	notranslate := flag.Bool("notranslate", false, "run the SM11 interpreter without the basic-block translation cache")
	var chans chanFlags
	flag.Var(&chans, "chan", "add a channel FROM:TO between regime indexes (repeatable)")
	flag.Parse()

	// With -trace - the event stream owns stdout; everything else (the
	// demo banner, the exit report, metrics) moves to stderr so the JSONL
	// can be piped straight into septrace.
	out := io.Writer(os.Stdout)
	if *tracePath == "-" {
		out = os.Stderr
	}

	b := core.NewBuilder()
	args := flag.Args()
	var names []string
	if len(args) == 0 {
		b.Regime("sender", demoSender)
		b.Regime("receiver", demoReceiver)
		b.Channel("sender", "receiver", 8)
		names = []string{"sender", "receiver"}
		fmt.Fprintln(out, "seprun: no programs given; running the built-in sender/receiver demo")
	} else {
		for i, path := range args {
			src, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			name := fmt.Sprintf("r%d", i)
			names = append(names, name)
			b.Regime(name, string(src))
		}
		for _, spec := range chans {
			var from, to int
			if _, err := fmt.Sscanf(spec, "%d:%d", &from, &to); err != nil {
				fatal(fmt.Errorf("bad -chan %q: %w", spec, err))
			}
			if from < 0 || from >= len(names) || to < 0 || to >= len(names) {
				fatal(fmt.Errorf("-chan %q references a missing regime", spec))
			}
			b.Channel(names[from], names[to], 16)
		}
	}
	if *cut {
		b.CutChannels()
	}
	if *notranslate {
		b.NoTranslate()
	}
	if *slice > 0 {
		b.WithFixedSlice(*slice)
	}

	sys, err := b.Build()
	if err != nil {
		fatal(err)
	}
	if *itrace > 0 {
		left := *itrace
		sys.Machine.SetTracer(func(e machine.TraceEntry) {
			if left <= 0 {
				return
			}
			left--
			who := "kernel"
			if e.User {
				who = names[sys.Kernel.CurrentRegime()]
			}
			fmt.Fprintf(out, "%s  [%s]\n", e, who)
		})
	}

	// Event tracing: attach the requested sink before the run and finish
	// the file (flush / close the JSON array) after it.
	var finishTrace func() error
	if *tracePath != "" {
		w := io.Writer(os.Stdout)
		closeFile := func() error { return nil }
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			w, closeFile = f, f.Close
		}
		switch *traceFormat {
		case "jsonl":
			j := obs.NewJSONL(w)
			sys.SetTracer(j)
			finishTrace = func() error {
				if err := j.Flush(); err != nil {
					return err
				}
				return closeFile()
			}
		case "chrome":
			c := obs.NewChrome(w, sys.RegimeNames())
			sys.SetTracer(c)
			finishTrace = func() error {
				if err := c.Close(); err != nil {
					return err
				}
				return closeFile()
			}
		default:
			fatal(fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", *traceFormat))
		}
	}

	n := sys.RunUntilIdle(*steps)

	if finishTrace != nil {
		if err := finishTrace(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "trace written to %s (%s)\n", *tracePath, *traceFormat)
	}

	fmt.Fprintf(out, "ran %d cycles (%d machine cycles total)\n", n, sys.Machine.Cycles())
	if sys.Kernel.Dead() {
		fmt.Fprintf(out, "KERNEL DIED: %v\n", sys.Kernel.Cause)
		os.Exit(1)
	}
	exitReport(out, sys, names)

	if *metrics {
		reg := obs.NewRegistry()
		sys.Kernel.FillRegistry(reg)
		fmt.Fprintln(out, "\nmetrics:")
		reg.WritePrometheus(out)
	}
}

// exitReport prints the per-regime outcome: what each regime did (from the
// kernel's activity counters) and how it ended.
func exitReport(out io.Writer, sys *core.System, names []string) {
	st := sys.Stats()
	fmt.Fprintf(out, "kernel: swaps=%d sched-decisions=%d ctx-switches=%d interrupts=%d deliveries=%d\n",
		st.Swaps, st.SchedDecisions, st.Switches, st.Interrupts, st.Deliveries)
	fmt.Fprintf(out, "%-10s %-13s %9s %9s %6s %6s  %s\n",
		"regime", "state", "instrs", "syscalls", "sends", "recvs", "exit")
	for i, name := range names {
		state := sys.Kernel.RegimeStateOf(i)
		stateName := map[machine.Word]string{
			kernel.StateRunnable: "runnable",
			kernel.StateDead:     "halted",
			kernel.StateWaitIRQ:  "waiting-irq",
		}[state]
		exit := "ran to step limit"
		switch state {
		case kernel.StateDead:
			exit = "halted voluntarily (TRAP #HALTME)"
			if f := sys.Kernel.RegimeFault(i); f.Reason != "" {
				stateName = "faulted"
				exit = fmt.Sprintf("FAULT: %s at PC %#x", f.Reason, f.PC)
			}
		case kernel.StateWaitIRQ:
			exit = "blocked in TRAP #WAITIRQ"
		}
		w, _ := sys.RegimeWord(name, 0x20)
		fmt.Fprintf(out, "%-10s %-13s %9d %9d %6d %6d  %s (mem[0x20]=%#x)\n",
			name, stateName,
			st.InstrPerRegime[i], st.SyscallPerRegime[i],
			st.SendPerRegime[i], st.RecvPerRegime[i], exit, w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seprun:", err)
	os.Exit(1)
}
