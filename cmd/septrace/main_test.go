package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/distsys"
	"repro/internal/obs"
	"repro/internal/timingchan"
)

var update = flag.Bool("update", false, "regenerate testdata traces and golden files")

// The committed traces under testdata/ are real artifacts: the fabric
// traces come from distsys.NewStreamDemo runs (honest under both
// deployments, plus one with the planted QuantumLeak), the kernel traces
// from actual timingchan transfers on the SUE-Go kernel. -update
// regenerates all of them deterministically.

func writeTrace(t *testing.T, name string, events []obs.Event) {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func fabricEvents(t *testing.T, d distsys.Deployment, leak bool) []obs.Event {
	t.Helper()
	f := distsys.NewStreamDemo(d, 24, 6)
	if leak {
		f.PlantQuantumLeak(distsys.QuantumLeak{Modulator: "spy", Victim: "prod", Bonus: 8})
	}
	var events []obs.Event
	f.SetTracer(obs.TracerFunc(func(e obs.Event) { events = append(events, e) }))
	f.Run(200)
	return events
}

func kernelEvents(t *testing.T, fixedSlice int) []obs.Event {
	t.Helper()
	var events []obs.Event
	res, _, err := timingchan.RunConfig(timingchan.Config{
		NBits: 64, Seed: 11, Busy: 60, Threshold: 40,
		FixedSlice: fixedSlice, StopOnFinish: true,
		Tracer: obs.TracerFunc(func(e obs.Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("timingchan receiver did not finish")
	}
	return events
}

func regen(t *testing.T) {
	t.Helper()
	if !*update {
		return
	}
	writeTrace(t, "fabric_physical.jsonl", fabricEvents(t, distsys.Physical, false))
	writeTrace(t, "fabric_kernelhosted.jsonl", fabricEvents(t, distsys.KernelHosted, false))
	writeTrace(t, "fabric_leaky.jsonl", fabricEvents(t, distsys.KernelHosted, true))
	writeTrace(t, "timingchan_open.jsonl", kernelEvents(t, 0))
	writeTrace(t, "timingchan_fixed.jsonl", kernelEvents(t, 200))
}

func runCLI(t *testing.T, wantExit int, stdin string, args ...string) string {
	t.Helper()
	var out, errw bytes.Buffer
	got := run(args, strings.NewReader(stdin), &out, &errw)
	if got != wantExit {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, wantExit, out.String(), errw.String())
	}
	return out.String()
}

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/septrace -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func td(name string) string { return filepath.Join("testdata", name) }

func TestGoldenProject(t *testing.T) {
	regen(t)
	out := runCLI(t, 0, "", "project", td("fabric_physical.jsonl"))
	golden(t, "project_physical", out)
	if !strings.Contains(out, "regime 0:") || !strings.Contains(out, "regime 3:") {
		t.Errorf("projection misses regimes:\n%s", out)
	}
}

// The honest workload is deployment-invariant: every regime's projection
// is byte-identical between Physical and KernelHosted, so diff exits 0.
func TestGoldenDiffHonest(t *testing.T) {
	regen(t)
	out := runCLI(t, 0, "", "diff", td("fabric_physical.jsonl"), td("fabric_kernelhosted.jsonl"))
	golden(t, "diff_honest", out)
	if !strings.Contains(out, "verdict: indistinguishable") || strings.Contains(out, "DIVERGED") {
		t.Errorf("honest diff verdict wrong:\n%s", out)
	}
}

// The planted scheduling leak makes the consumer's view diverge; diff
// exits 1 and pinpoints the first divergent event.
func TestGoldenDiffLeaky(t *testing.T) {
	regen(t)
	out := runCLI(t, 1, "", "diff", td("fabric_physical.jsonl"), td("fabric_leaky.jsonl"))
	golden(t, "diff_leaky", out)
	if !strings.Contains(out, "regime 1: DIVERGED at event 12") {
		t.Errorf("leak not pinpointed:\n%s", out)
	}
	if !strings.Contains(out, "verdict: DISTINGUISHABLE") {
		t.Errorf("missing verdict:\n%s", out)
	}
}

// -format json renders the same verdicts machine-readably: golden-tested
// alongside the text output, and structurally checked so sepwatch-style
// consumers can rely on the schema.
func TestGoldenDiffJSON(t *testing.T) {
	regen(t)
	honest := runCLI(t, 0, "", "diff", "-format", "json",
		td("fabric_physical.jsonl"), td("fabric_kernelhosted.jsonl"))
	golden(t, "diff_honest_json", honest)
	leaky := runCLI(t, 1, "", "diff", "-format", "json",
		td("fabric_physical.jsonl"), td("fabric_leaky.jsonl"))
	golden(t, "diff_leaky_json", leaky)

	var report struct {
		Verdict string `json:"verdict"`
		Regimes []struct {
			Regime    int    `json:"regime"`
			Equal     bool   `json:"equal"`
			ADigest   string `json:"aDigest"`
			BDigest   string `json:"bDigest"`
			DivergeAt int    `json:"divergeAt"`
			A         string `json:"a"`
			B         string `json:"b"`
		} `json:"regimes"`
	}
	if err := json.Unmarshal([]byte(honest), &report); err != nil {
		t.Fatalf("honest JSON: %v\n%s", err, honest)
	}
	if report.Verdict != "indistinguishable" {
		t.Errorf("honest verdict = %q", report.Verdict)
	}
	for _, r := range report.Regimes {
		if !r.Equal || r.ADigest != r.BDigest || r.DivergeAt != -1 {
			t.Errorf("honest regime diverges in JSON: %+v", r)
		}
	}
	if err := json.Unmarshal([]byte(leaky), &report); err != nil {
		t.Fatalf("leaky JSON: %v\n%s", err, leaky)
	}
	if report.Verdict != "DISTINGUISHABLE" {
		t.Errorf("leaky verdict = %q", report.Verdict)
	}
	found := false
	for _, r := range report.Regimes {
		if r.Regime == 1 {
			found = true
			if r.Equal || r.DivergeAt != 12 || r.ADigest == r.BDigest || r.A == "" || r.B == "" {
				t.Errorf("leak divergence not machine-readable: %+v", r)
			}
		}
	}
	if !found {
		t.Error("regime 1 missing from JSON report")
	}
	runCLI(t, 2, "", "diff", "-format", "bogus",
		td("fabric_physical.jsonl"), td("fabric_leaky.jsonl"))
}

var capRe = regexp.MustCompile(`cap=([0-9.]+)`)

func capOf(t *testing.T, out string) float64 {
	t.Helper()
	m := capRe.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no capacity in output:\n%s", out)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The acceptance claim: septrace covert over a real kernel trace reports
// nonzero bandwidth consistent with the in-memory synthetic measurement,
// and (near) zero once fixed-slice scheduling cuts the channel.
func TestGoldenCovert(t *testing.T) {
	regen(t)
	open := runCLI(t, 0, "", "covert", td("timingchan_open.jsonl"))
	golden(t, "covert_open", open)
	cut := runCLI(t, 0, "", "covert", td("timingchan_fixed.jsonl"))
	golden(t, "covert_fixed", cut)

	capOpen, capCut := capOf(t, open), capOf(t, cut)
	if capOpen <= 0.5 {
		t.Errorf("open-channel trace capacity %.3f, want substantial", capOpen)
	}
	if capCut > 0.2*capOpen {
		t.Errorf("cut-channel trace capacity %.3f vs open %.3f; cut regression undetected", capCut, capOpen)
	}

	// Consistency with the synthetic harness measuring the same transfer
	// from inside the receiver's memory.
	res, _, err := timingchan.Run(64, 11, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	if syn := res.Covert.CapacityPerSymbol; capOpen < syn-0.2 {
		t.Errorf("trace capacity %.3f well below synthetic %.3f", capOpen, syn)
	}
}

func TestStdinDash(t *testing.T) {
	regen(t)
	trace, err := os.ReadFile(td("fabric_physical.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, 0, string(trace), "project", "-regime", "1", "-")
	if !strings.Contains(out, "regime 1:") || strings.Contains(out, "regime 0:") {
		t.Errorf("-regime filter over stdin wrong:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	runCLI(t, 2, "", "bogus")
	runCLI(t, 2, "")
	runCLI(t, 0, "", "help")
	runCLI(t, 2, "", "project", td("nosuch.jsonl"))
	runCLI(t, 2, "", "diff", td("fabric_physical.jsonl"))
	runCLI(t, 2, "", "covert")
}
