// Command septrace analyzes recorded obs event traces (JSONL, as written
// by seprun -trace or any obs.JSONL sink). It turns trace files into
// security evidence — no access to the traced system required:
//
//	septrace project trace.jsonl
//	    print each regime's projection: the subsequence of events the
//	    regime could itself observe, restamped onto its own virtual
//	    clock, with a canonical digest per regime.
//
//	septrace diff [-format text|json] a.jsonl b.jsonl
//	    compare per-regime projections across two traces (the same
//	    workload under distsys's Physical and KernelHosted deployments,
//	    or two kernel builds). Exits 1 with a first-divergence report if
//	    any regime can tell the runs apart. -format json emits the same
//	    report as machine-readable JSON (hex digests, divergence index),
//	    for sepwatch and external drift tooling.
//
//	septrace covert -seed 11 -nbits 64 -threshold 40 trace.jsonl
//	    measure the scheduling covert channel toward a receiver regime
//	    from the trace alone: turn-start gaps are thresholded into bits,
//	    aligned against the known probe bitstring, and scored with the
//	    same binary-symmetric-channel arithmetic as the in-memory
//	    harness. -chan C measures a storage channel carried by channel
//	    C's occupancy instead.
//
// A trace path of "-" reads stdin, pairing with `seprun -trace -`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/covert"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

func run(args []string, stdin io.Reader, out, errw io.Writer) int {
	if len(args) == 0 {
		usage(errw)
		return 2
	}
	switch args[0] {
	case "project":
		return cmdProject(args[1:], stdin, out, errw)
	case "diff":
		return cmdDiff(args[1:], stdin, out, errw)
	case "covert":
		return cmdCovert(args[1:], stdin, out, errw)
	case "-h", "-help", "--help", "help":
		usage(errw)
		return 0
	}
	fmt.Fprintf(errw, "septrace: unknown subcommand %q\n", args[0])
	usage(errw)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  septrace project [-regime N] trace.jsonl
  septrace diff [-format text|json] a.jsonl b.jsonl
  septrace covert [-regime N] [-seed S] [-nbits N] [-threshold T] [-maxoff K] [-chan C] trace.jsonl
a trace path of "-" reads stdin
`)
}

// load reads one JSONL trace ("-" = stdin).
func load(path string, stdin io.Reader, errw io.Writer) ([]obs.Event, bool) {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(errw, "septrace:", err)
			return nil, false
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadJSONL(r)
	if err != nil {
		fmt.Fprintf(errw, "septrace: %s: %v\n", path, err)
		return nil, false
	}
	return events, true
}

func cmdProject(args []string, stdin io.Reader, out, errw io.Writer) int {
	fs := flag.NewFlagSet("septrace project", flag.ContinueOnError)
	fs.SetOutput(errw)
	regime := fs.Int("regime", -1, "project only this regime (-1: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "septrace project: want exactly one trace file")
		return 2
	}
	events, ok := load(fs.Arg(0), stdin, errw)
	if !ok {
		return 2
	}
	regimes := analyze.Regimes(events)
	if *regime >= 0 {
		regimes = []int{*regime}
	}
	var buf []byte
	for _, r := range regimes {
		p := analyze.Project(events, r)
		fmt.Fprintf(out, "regime %d: %d events, digest %016x\n", r, len(p.Events), p.Digest)
		for _, e := range p.Events {
			buf = obs.AppendJSON(buf[:0], e)
			fmt.Fprintf(out, "  %s\n", buf)
		}
	}
	return 0
}

func cmdDiff(args []string, stdin io.Reader, out, errw io.Writer) int {
	fs := flag.NewFlagSet("septrace diff", flag.ContinueOnError)
	fs.SetOutput(errw)
	format := fs.String("format", "text", "report format: text or json")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(errw, "septrace diff: unknown -format %q (want text or json)\n", *format)
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "septrace diff: want exactly two trace files")
		return 2
	}
	a, ok := load(fs.Arg(0), stdin, errw)
	if !ok {
		return 2
	}
	b, ok := load(fs.Arg(1), stdin, errw)
	if !ok {
		return 2
	}
	diffs := analyze.DiffAll(a, b)
	diverged := false
	for _, d := range diffs {
		if !d.Equal {
			diverged = true
		}
	}
	if *format == "json" {
		verdict := "indistinguishable"
		if diverged {
			verdict = "DISTINGUISHABLE"
		}
		report := struct {
			Verdict string               `json:"verdict"`
			Regimes []analyze.DiffRecord `json:"regimes"`
		}{Verdict: verdict, Regimes: analyze.Records(diffs)}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(errw, "septrace diff:", err)
			return 2
		}
	} else {
		for _, d := range diffs {
			fmt.Fprintln(out, d)
		}
		if diverged {
			fmt.Fprintln(out, "verdict: DISTINGUISHABLE")
		} else {
			fmt.Fprintln(out, "verdict: indistinguishable")
		}
	}
	if diverged {
		return 1
	}
	return 0
}

func cmdCovert(args []string, stdin io.Reader, out, errw io.Writer) int {
	fs := flag.NewFlagSet("septrace covert", flag.ContinueOnError)
	fs.SetOutput(errw)
	regime := fs.Int("regime", 1, "receiver regime index")
	seed := fs.Uint64("seed", 11, "probe bitstring PRNG seed")
	nbits := fs.Int("nbits", 64, "probe bitstring length")
	threshold := fs.Uint64("threshold", 40, "gap/occupancy decision threshold")
	maxoff := fs.Int("maxoff", 8, "maximum alignment offset to search")
	channel := fs.Int("chan", -1, "measure channel C's occupancy instead of scheduling gaps")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "septrace covert: want exactly one trace file")
		return 2
	}
	events, ok := load(fs.Arg(0), stdin, errw)
	if !ok {
		return 2
	}
	sent := covert.Bitstring(*seed, *nbits)
	var m analyze.ScheduleMeasurement
	if *channel >= 0 {
		m = analyze.MeasureOccupancy(events, *channel, sent, *threshold, *maxoff)
		fmt.Fprintf(out, "storage channel via channel %d occupancy (%d samples, offset %d)\n",
			*channel, m.Turns, m.Offset)
	} else {
		m = analyze.MeasureSchedule(events, *regime, sent, *threshold, *maxoff)
		fmt.Fprintf(out, "scheduling channel toward regime %d (%d turns, offset %d)\n",
			*regime, m.Turns, m.Offset)
	}
	fmt.Fprintf(out, "measured: %s\n", m.Covert)
	fmt.Fprintf(out, "accuracy: %.2f over %d cycles\n", m.Covert.Accuracy(), m.Covert.Rounds)
	return 0
}
