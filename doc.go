// Package repro is a library-scale reproduction of John Rushby's "Design
// and Verification of Secure Systems" (8th SOSP, 1981): the separation
// kernel, Proof of Separability, channel cutting, the IFA critique, and
// the distributed secure-system designs (MLS workstation, SNFE, Guard)
// the paper builds its argument on.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are under cmd/ and examples/; the
// benchmark harness regenerating every experiment is bench_test.go (see
// EXPERIMENTS.md for the experiment index and measured results).
package repro
